#pragma once
// Warm artifact cache of the placement service.  Three LRU pools keyed by
// content hashes hold the expensive, reusable prefixes of a job:
//   * designs      — parsed Bookshelf circuits / generated synthetic designs,
//                    keyed by the file bytes (not the path: an edited file
//                    re-parses) or the canonical benchgen spec;
//   * prepared     — {post-prepare_flow design, FlowContext} pairs for the
//                    RL flows, keyed by design key + grid dimension.  Since
//                    prepare_flow is deterministic, a job resumed from this
//                    artifact is bit-identical to a cold run (the
//                    *_prepared placer entry points, src/place/placer.hpp);
//   * weights      — pre-trained agent parameter files (nn::load_parameters),
//                    keyed by file bytes.
// Entries are immutable shared snapshots: executors copy what they mutate,
// so concurrent readers need no locking beyond the lookup.  Hits and misses
// are counted through obs (svc.cache.{design,prepared,weights}.{hits,misses})
// — the run report of a warm job shows zero misses, which is how the e2e
// test asserts cache effectiveness (docs/SERVICE.md).
//
// Concurrency: lookups take one short-held mutex; the expensive build
// (parse / prepare_flow / weight load) runs OUTSIDE it, so workers
// resolving different keys build in parallel.  Per-key in-flight entries
// deduplicate concurrent resolution of the SAME key: the first worker
// builds (one miss), later workers block on that build and share the
// artifact (one hit each) — never a duplicate build.

#include <condition_variable>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/annotations.hpp"
#include "netlist/design.hpp"
#include "nn/layers.hpp"
#include "place/flow.hpp"
#include "svc/job.hpp"

namespace mp::svc {

/// Bounded most-recently-used map; not thread-safe (ArtifactCache locks).
template <typename V>
class LruPool {
 public:
  explicit LruPool(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const V> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  void put(const std::string& key, std::shared_ptr<const V> value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  std::size_t size() const { return order_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, std::shared_ptr<const V>>> order_;
  std::unordered_map<
      std::string,
      typename std::list<std::pair<std::string, std::shared_ptr<const V>>>::iterator>
      index_;
};

struct DesignArtifact {
  std::string key;
  netlist::Design design;  ///< as loaded/generated, before any placement
};

struct PreparedArtifact {
  std::string key;
  netlist::Design design;        ///< after prepare_flow's initial placement
  place::FlowContext context;    ///< grid + clustering + coarse netlist
};

struct WeightsArtifact {
  std::string key;
  std::vector<nn::Tensor> parameters;
};

struct CacheStats {
  long long design_hits = 0, design_misses = 0;
  long long prepared_hits = 0, prepared_misses = 0;
  long long weights_hits = 0, weights_misses = 0;
};

namespace detail {

/// One build in progress: later arrivals for the same key wait on `cv`.
template <typename V>
struct InFlight {
  std::mutex m MP_GUARDS(done, value, error);
  std::condition_variable cv MP_GUARDED_BY(m);
  bool done MP_GUARDED_BY(m) = false;
  std::shared_ptr<const V> value MP_GUARDED_BY(m);
  std::exception_ptr error MP_GUARDED_BY(m);
};

}  // namespace detail

class ArtifactCache {
 public:
  explicit ArtifactCache(std::size_t designs = 8, std::size_t prepared = 8,
                         std::size_t weights = 4);

  /// Loads (Bookshelf) or generates (benchgen) the job's design, reusing a
  /// cached copy when the content hash matches.  Throws std::runtime_error
  /// on I/O or parse failure.
  std::shared_ptr<const DesignArtifact> design_for(const JobSpec& spec);

  /// Runs prepare_flow on a copy of `design` (or reuses the cached result
  /// for the same design + grid + flow preprocessing options).
  std::shared_ptr<const PreparedArtifact> prepared_for(
      const std::shared_ptr<const DesignArtifact>& design,
      const place::FlowOptions& flow);

  /// Loads an nn::save_parameters file, keyed by its bytes.
  std::shared_ptr<const WeightsArtifact> weights_for(const std::string& path);

  CacheStats stats() const;

 private:
  template <typename V>
  using InFlightMap =
      std::unordered_map<std::string, std::shared_ptr<detail::InFlight<V>>>;

  /// The hit/miss/dedup protocol shared by the three pools (cache.cpp).
  template <typename V, typename Build>
  std::shared_ptr<const V> resolve(LruPool<V>& pool, InFlightMap<V>& inflight,
                                   const std::string& key, long long& hits,
                                   long long& misses, const char* hit_counter,
                                   const char* miss_counter, Build&& build);

  mutable std::mutex mutex_ MP_GUARDS(designs_, prepared_, weights_,
                                      designs_inflight_, prepared_inflight_,
                                      weights_inflight_, stats_);
  LruPool<DesignArtifact> designs_ MP_GUARDED_BY(mutex_);
  LruPool<PreparedArtifact> prepared_ MP_GUARDED_BY(mutex_);
  LruPool<WeightsArtifact> weights_ MP_GUARDED_BY(mutex_);
  InFlightMap<DesignArtifact> designs_inflight_ MP_GUARDED_BY(mutex_);
  InFlightMap<PreparedArtifact> prepared_inflight_ MP_GUARDED_BY(mutex_);
  InFlightMap<WeightsArtifact> weights_inflight_ MP_GUARDED_BY(mutex_);
  CacheStats stats_ MP_GUARDED_BY(mutex_);
};

}  // namespace mp::svc
