#pragma once
// Thread-budget arbiter of the placement service (docs/SERVICE.md,
// docs/PARALLELISM.md): partitions the machine's global thread budget
// across concurrently running jobs.  Each job acquires a ThreadLease before
// it starts; the lease size drives the job's private par::ThreadPool, and
// releasing it (job completion or cancel) returns the threads to the budget
// so a lone job expands to the whole machine.
//
// Lease sizes never change results: par:: chunking depends only on grain,
// so a job is bit-identical whether it runs on 1 thread or 64.

#include <mutex>

#include "check/annotations.hpp"

namespace mp::svc {

class ThreadArbiter;

/// RAII lease of `threads()` pool threads; move-only, released on
/// destruction.  A default-constructed lease holds nothing.
class ThreadLease {
 public:
  ThreadLease() = default;
  ThreadLease(ThreadLease&& other) noexcept
      : arbiter_(other.arbiter_), threads_(other.threads_) {
    other.arbiter_ = nullptr;
    other.threads_ = 0;
  }
  ThreadLease& operator=(ThreadLease&& other) noexcept;
  ~ThreadLease() { release(); }
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  int threads() const { return threads_; }
  /// Early release (before destruction); idempotent.
  void release();

 private:
  friend class ThreadArbiter;
  ThreadLease(ThreadArbiter* arbiter, int threads)
      : arbiter_(arbiter), threads_(threads) {}

  ThreadArbiter* arbiter_ = nullptr;
  int threads_ = 0;
};

/// Non-blocking arbiter over a fixed total.  acquire() grants
/// min(want, total - leased) where want is the request (0 = the whole
/// budget), floored at 1 so admission never stalls: when every thread is
/// leased, a new job still runs — serially — rather than waiting.  The
/// floor means `leased` can transiently exceed `total` under full load
/// (bounded oversubscription by one thread per running job); leases shrink
/// back as jobs finish.
class ThreadArbiter {
 public:
  explicit ThreadArbiter(int total) : total_(total < 1 ? 1 : total) {}
  ThreadArbiter(const ThreadArbiter&) = delete;
  ThreadArbiter& operator=(const ThreadArbiter&) = delete;

  ThreadLease acquire(int requested) MP_EXCLUDES(mutex_);

  int total() const { return total_; }
  int leased() const MP_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return leased_;
  }

 private:
  friend class ThreadLease;
  void release_threads(int threads) MP_EXCLUDES(mutex_);

  const int total_;
  mutable std::mutex mutex_ MP_GUARDS(leased_);
  int leased_ MP_GUARDED_BY(mutex_) = 0;
};

}  // namespace mp::svc
