#include "svc/job.hpp"

#include <cmath>
#include <set>

#include "svc/hash.hpp"

namespace mp::svc {

namespace {

[[noreturn]] void bad(const std::string& key, const std::string& what) {
  throw JobError("job spec: \"" + key + "\" " + what);
}

double require_number(const Json& v, const std::string& key) {
  if (!v.is_number()) bad(key, "must be a number");
  return v.as_number();
}

// Integer field with range validation; rejects fractional values so "0.5
// episodes" cannot silently truncate.
int require_int(const Json& v, const std::string& key, long long lo,
                long long hi) {
  const double d = require_number(v, key);
  if (d != std::floor(d)) bad(key, "must be an integer");
  const long long n = static_cast<long long>(d);
  if (n < lo || n > hi) {
    bad(key, "out of range [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
  }
  return static_cast<int>(n);
}

const std::string& require_string(const Json& v, const std::string& key) {
  if (!v.is_string()) bad(key, "must be a string");
  return v.as_string();
}

benchgen::BenchSpec parse_synthetic(const Json& json) {
  if (!json.is_object()) bad("synthetic", "must be an object");
  benchgen::BenchSpec spec;
  static const std::set<std::string> known = {
      "name",     "movable_macros", "preplaced_macros",
      "io_pads",  "std_cells",      "nets",
      "hierarchy", "seed",          "scale",
      "macro_area_fraction",        "utilization"};
  for (const auto& [key, value] : json.members()) {
    if (known.count(key) == 0) bad("synthetic." + key, "is not a known field");
    const std::string qualified = "synthetic." + key;
    if (key == "name") spec.name = require_string(value, qualified);
    else if (key == "movable_macros")
      spec.movable_macros = require_int(value, qualified, 1, 100000);
    else if (key == "preplaced_macros")
      spec.preplaced_macros = require_int(value, qualified, 0, 100000);
    else if (key == "io_pads")
      spec.io_pads = require_int(value, qualified, 0, 1000000);
    else if (key == "std_cells")
      spec.std_cells = require_int(value, qualified, 0, 100000000);
    else if (key == "nets")
      spec.nets = require_int(value, qualified, 1, 100000000);
    else if (key == "hierarchy") {
      if (!value.is_bool()) bad(qualified, "must be a bool");
      spec.hierarchy = value.as_bool();
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(
          require_int(value, qualified, 0, (1ll << 53)));
    } else if (key == "scale") {
      spec.scale = require_number(value, qualified);
      if (!(spec.scale > 0.0 && spec.scale <= 1.0)) {
        bad(qualified, "must be in (0, 1]");
      }
    } else if (key == "macro_area_fraction") {
      spec.macro_area_fraction = require_number(value, qualified);
      if (!(spec.macro_area_fraction > 0.0 && spec.macro_area_fraction < 1.0)) {
        bad(qualified, "must be in (0, 1)");
      }
    } else if (key == "utilization") {
      spec.utilization = require_number(value, qualified);
      if (!(spec.utilization > 0.0 && spec.utilization <= 1.0)) {
        bad(qualified, "must be in (0, 1]");
      }
    }
  }
  return spec;
}

// Every accepted preset spelling, for the "preset" error message — built
// from the one shared table so the message can never drift from the parser.
std::string preset_name_list() {
  std::string names;
  for (const place::PresetAlias& alias : place::preset_aliases()) {
    if (!names.empty()) names += '|';
    names += alias.name;
  }
  return names;
}

void parse_regulate_block(const Json& json, JobSpec& spec) {
  if (!json.is_object()) bad("regulate", "must be an object");
  static const std::set<std::string> known = {"radius", "max_moves", "frozen"};
  for (const auto& [key, value] : json.members()) {
    const std::string qualified = "regulate." + key;
    if (known.count(key) == 0) bad(qualified, "is not a known field");
    if (key == "radius") {
      spec.regulate_radius = require_int(value, qualified, 0, 256);
    } else if (key == "max_moves") {
      spec.regulate_max_moves = require_int(value, qualified, 0, 1000000);
    } else if (key == "frozen") {
      if (!value.is_array()) bad(qualified, "must be an array of strings");
      for (const Json& item : value.items()) {
        spec.regulate_frozen.push_back(require_string(item, qualified + "[]"));
      }
    }
  }
}

}  // namespace

JobSpec parse_job_spec(const Json& json) {
  if (!json.is_object()) throw JobError("job spec must be a JSON object");
  JobSpec spec;
  // The schema version gates which fields exist, so resolve it before the
  // member loop (object members iterate in sorted order, not input order).
  if (const Json* schema = json.find("schema")) {
    spec.schema = require_int(*schema, "schema", 1, 1000000);
    if (spec.schema != 1 && spec.schema != 2) {
      bad("schema", "is not supported (accepted schema versions: 1, 2)");
    }
  }
  static const std::set<std::string> known_v1 = {
      "design",   "synthetic", "preset",  "seed",    "threads",
      "deadline_s", "priority", "episodes", "gamma", "grid",
      "channels", "blocks",    "weights", "out",     "schema"};
  static const std::set<std::string> known_v2 = {"initial_placement",
                                                 "regulate"};
  for (const auto& [key, value] : json.members()) {
    if (known_v1.count(key) == 0) {
      if (known_v2.count(key) == 0) bad(key, "is not a known field");
      if (spec.schema < 2) {
        bad(key, "requires \"schema\": 2 (accepted schema versions: 1, 2)");
      }
    }
    if (key == "schema") continue;  // resolved above
    if (key == "initial_placement") {
      spec.initial_placement_path = require_string(value, key);
      continue;
    }
    if (key == "regulate") {
      parse_regulate_block(value, spec);
      continue;
    }
    if (key == "design") spec.design_path = require_string(value, key);
    else if (key == "synthetic") {
      spec.use_synthetic = true;
      spec.synthetic = parse_synthetic(value);
    } else if (key == "preset") {
      if (!parse_preset(require_string(value, key), spec.preset)) {
        bad(key, "must be one of " + preset_name_list());
      }
    } else if (key == "seed") {
      spec.seed =
          static_cast<std::uint64_t>(require_int(value, key, 0, (1ll << 53)));
    } else if (key == "threads") {
      spec.threads = require_int(value, key, 0, 1024);
    } else if (key == "deadline_s") {
      spec.deadline_s = require_number(value, key);
      if (spec.deadline_s < 0.0 || spec.deadline_s > 86400.0) {
        bad(key, "must be in [0, 86400]");
      }
    } else if (key == "priority") {
      spec.priority = require_int(value, key, -100, 100);
    } else if (key == "episodes") {
      spec.episodes = require_int(value, key, 1, 1000000);
    } else if (key == "gamma") {
      spec.gamma = require_int(value, key, 1, 1000000);
    } else if (key == "grid") {
      spec.grid = require_int(value, key, 2, 256);
    } else if (key == "channels") {
      spec.channels = require_int(value, key, 1, 4096);
    } else if (key == "blocks") {
      spec.blocks = require_int(value, key, 0, 256);
    } else if (key == "weights") {
      spec.weights_path = require_string(value, key);
    } else if (key == "out") {
      spec.out_prefix = require_string(value, key);
    }
  }
  if (spec.design_path.empty() && !spec.use_synthetic) {
    throw JobError("job spec: one of \"design\" or \"synthetic\" is required");
  }
  if (!spec.design_path.empty() && spec.use_synthetic) {
    throw JobError(
        "job spec: \"design\" and \"synthetic\" are mutually exclusive");
  }
  if (spec.preset == FlowPreset::kRegulate) {
    if (spec.schema < 2) {
      bad("preset",
          "\"regulate\" requires \"schema\": 2 "
          "(accepted schema versions: 1, 2)");
    }
    if (spec.initial_placement_path.empty()) {
      throw JobError(
          "job spec: preset \"regulate\" requires \"initial_placement\"");
    }
  }
  return spec;
}

Json job_spec_to_json(const JobSpec& spec) {
  Json j = Json::object();
  if (spec.use_synthetic) {
    Json s = Json::object();
    s["name"] = Json::string(spec.synthetic.name);
    s["movable_macros"] = Json::number(spec.synthetic.movable_macros);
    s["preplaced_macros"] = Json::number(spec.synthetic.preplaced_macros);
    s["io_pads"] = Json::number(spec.synthetic.io_pads);
    s["std_cells"] = Json::number(spec.synthetic.std_cells);
    s["nets"] = Json::number(spec.synthetic.nets);
    s["hierarchy"] = Json::boolean(spec.synthetic.hierarchy);
    s["seed"] = Json::number(static_cast<double>(spec.synthetic.seed));
    s["scale"] = Json::number(spec.synthetic.scale);
    s["macro_area_fraction"] = Json::number(spec.synthetic.macro_area_fraction);
    s["utilization"] = Json::number(spec.synthetic.utilization);
    j["synthetic"] = s;
  } else {
    j["design"] = Json::string(spec.design_path);
  }
  j["preset"] = Json::string(preset_name(spec.preset));
  j["seed"] = Json::number(static_cast<double>(spec.seed));
  j["threads"] = Json::number(spec.threads);
  j["deadline_s"] = Json::number(spec.deadline_s);
  j["priority"] = Json::number(spec.priority);
  j["episodes"] = Json::number(spec.episodes);
  j["gamma"] = Json::number(spec.gamma);
  j["grid"] = Json::number(spec.grid);
  j["channels"] = Json::number(spec.channels);
  j["blocks"] = Json::number(spec.blocks);
  j["weights"] = Json::string(spec.weights_path);
  j["out"] = Json::string(spec.out_prefix);
  // v2 fields (and the "schema" key itself) are emitted only for schema 2:
  // a v1 spec's canonical bytes — and so its content-hash job ID — must stay
  // byte-identical to what pre-v2 servers produced.
  if (spec.schema >= 2) {
    j["schema"] = Json::number(spec.schema);
    j["initial_placement"] = Json::string(spec.initial_placement_path);
    Json r = Json::object();
    r["radius"] = Json::number(spec.regulate_radius);
    r["max_moves"] = Json::number(spec.regulate_max_moves);
    Json frozen = Json::array();
    for (const std::string& name : spec.regulate_frozen) {
      frozen.push_back(Json::string(name));
    }
    r["frozen"] = frozen;
    j["regulate"] = r;
  }
  return j;
}

std::string job_canonical_string(const JobSpec& spec) {
  return job_spec_to_json(spec).dump();
}

std::string make_job_id(const JobSpec& spec, std::uint64_t seq) {
  const std::uint64_t h = fnv1a64(job_canonical_string(spec));
  return "j" + hash_hex(h).substr(0, 10) + "-" + std::to_string(seq);
}

}  // namespace mp::svc
