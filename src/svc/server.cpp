#include "svc/server.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/framing.hpp"
#include "util/log.hpp"

namespace mp::svc {

Server::Server(LocalService& service, std::string endpoint_uri,
               ServerOptions options)
    : service_(service),
      endpoint_uri_(std::move(endpoint_uri)),
      options_(options) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (endpoint_.kind == net::Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
  close_all_connections();
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool Server::start(std::string* error) {
  std::string parse_error;
  if (!net::parse_endpoint(endpoint_uri_, &endpoint_, &parse_error)) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) {
      *error = std::string("pipe: ") + std::strerror(errno);
    }
    return false;
  }
  listen_fd_ = net::listen_endpoint(endpoint_, options_.backlog, error);
  if (listen_fd_ < 0) return false;
  bound_ = net::local_endpoint(listen_fd_, endpoint_);
  util::log_info() << "svc: listening on " << bound_.uri();
  return true;
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Self-pipe wakeup: one byte, async-signal-safe (the only call a SIGTERM
  // handler needs to make).
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

bool Server::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void Server::serve() {
  while (!shutdown_requested()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::log_warn() << "svc: poll failed: " << std::strerror(errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Accept failures are surfaced through the SLO registry so a fleet
      // scrape sees descriptor exhaustion instead of a silent stall.
      if (errno == EMFILE || errno == ENFILE) {
        service_.slo_registry().counter("net.accept.emfile").add(1);
        util::log_warn() << "svc: accept: out of descriptors ("
                         << std::strerror(errno) << "); backing off";
        // Brief pause so the busy-looping accept doesn't starve the
        // connection handlers that could be releasing descriptors.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      } else {
        service_.slo_registry().counter("net.accept.error").add(1);
        util::log_warn() << "svc: accept failed: " << std::strerror(errno);
      }
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }

  // Graceful drain: stop accepting (close the socket — and unlink a unix
  // path — so new connects fail fast), let the running job and the queued
  // backlog finish, then disconnect clients.
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (endpoint_.kind == net::Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  util::log_info() << "svc: draining (" << service_.jobs().size()
                   << " jobs known)";
  service_.drain();
  close_all_connections();
  util::log_info() << "svc: drained";
}

void Server::close_all_connections() {
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& c : connections_) {
      conns.push_back(c.get());
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);  // unblock reads
    }
  }
  for (Connection* c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const std::unique_ptr<Connection>& c : connections_) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  connections_.clear();
}

namespace {

Json error_reply(const std::string& message) {
  Json j = Json::object();
  j["ok"] = Json::boolean(false);
  j["error"] = Json::string(message);
  return j;
}

const std::string& require_id(const Json& request) {
  const Json* id = request.find("id");
  if (id == nullptr || !id->is_string()) {
    throw JsonError("request needs a string \"id\"");
  }
  return id->as_string();
}

const std::string& require_string(const Json& request, const char* field) {
  const Json* v = request.find(field);
  if (v == nullptr || !v->is_string()) {
    throw JsonError(std::string("request needs a string \"") + field + "\"");
  }
  return v->as_string();
}

}  // namespace

Json Server::handle_request(Connection* conn, const Json& request) {
  const Json* verb_field = request.find("verb");
  if (verb_field == nullptr || !verb_field->is_string()) {
    return error_reply("request needs a string \"verb\"");
  }
  const std::string& verb = verb_field->as_string();

  if (verb == "submit") {
    const Json* spec_field = request.find("spec");
    if (spec_field == nullptr) return error_reply("submit needs a \"spec\"");
    const JobSpec spec = parse_job_spec(*spec_field);  // throws JobError
    const Scheduler::SubmitResult result = service_.submit(spec);
    if (!result.accepted) return error_reply(result.error);
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    j["id"] = Json::string(result.id);
    return j;
  }
  if (verb == "status" || verb == "result") {
    const std::string id = require_id(request);
    if (verb == "result") {
      double timeout_s = 600.0;
      if (const Json* t = request.find("timeout_s")) timeout_s = t->as_number();
      if (!service_.wait(id, timeout_s)) {
        return error_reply("job " + id + " unknown or still running after " +
                           std::to_string(timeout_s) + "s");
      }
    }
    const std::optional<JobSnapshot> snap = service_.status(id);
    if (!snap) return error_reply("unknown job " + id);
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    j["job"] = LocalService::job_to_json(*snap);
    return j;
  }
  if (verb == "cancel") {
    const std::string id = require_id(request);
    const bool ok = service_.cancel(id);
    Json j = Json::object();
    j["ok"] = Json::boolean(ok);
    if (!ok) j["error"] = Json::string("job " + id + " unknown or finished");
    return j;
  }
  if (verb == "watch") {
    const std::string id = require_id(request);
    if (!service_.status(id)) return error_reply("unknown job " + id);
    const int token = service_.add_progress_listener(
        [this, conn, id](const ProgressEvent& event) {
          if (event.job_id != id) return;
          Json line = Json::object();
          line["event"] = Json::string("phase");
          line["job"] = Json::string(event.job_id);
          line["phase"] = Json::string(event.phase);
          line["depth"] = Json::number(event.depth);
          line["enter"] = Json::boolean(event.enter);
          line["seconds"] = Json::number(event.seconds);
          std::lock_guard<std::mutex> lock(conn->write_mutex);
          // A callback in flight while the connection closes must not write
          // to a recycled descriptor; fd is fenced by write_mutex.
          if (conn->fd >= 0) net::write_frame(conn->fd, line.dump());
        });
    service_.wait(id, 0.0);  // terminal is guaranteed even across a drain
    service_.remove_progress_listener(token);
    Json j = Json::object();
    j["event"] = Json::string("done");
    j["job"] = LocalService::job_to_json(*service_.status(id));
    return j;
  }
  if (verb == "jobs") {
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    Json list = Json::array();
    for (const JobSnapshot& snap : service_.jobs()) {
      list.push_back(LocalService::job_to_json(snap));
    }
    j["jobs"] = list;
    return j;
  }
  if (verb == "stats") {
    Json j = service_.stats_json();
    j["ok"] = Json::boolean(true);
    return j;
  }
  if (verb == "metrics") {
    // {"verb":"metrics"} → SLO registry as JSON; {"format":"prom"} wraps
    // the Prometheus text exposition in a {"text": ...} reply so the NDJSON
    // framing stays line-oriented (a sidecar exporter unwraps it).
    const Json* format = request.find("format");
    if (format != nullptr && format->is_string() &&
        format->as_string() == "prom") {
      Json j = Json::object();
      j["ok"] = Json::boolean(true);
      j["format"] = Json::string("prom");
      j["text"] = Json::string(service_.metrics_prom());
      return j;
    }
    Json j = service_.metrics_json();
    j["ok"] = Json::boolean(true);
    return j;
  }
  if (verb == "ping") {
    // Router health probe: cheap (no service locks), so a loaded backend
    // still answers within the router's ping timeout.
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    j["pong"] = Json::boolean(true);
    return j;
  }
  if (verb == "fetch_artifact") {
    // Peer artifact replication (docs/DISTRIBUTED.md): a ring peer asks for
    // a warm artifact by content hash before rebuilding it cold.  A miss is
    // a normal reply, not a failure — the peer just builds locally.
    const std::string& kind = require_string(request, "kind");
    const std::string& key = require_string(request, "key");
    std::string blob;
    if (!service_.artifact_blob(kind, key, &blob)) {
      return error_reply("artifact not cached: " + kind + " " + key);
    }
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    j["kind"] = Json::string(kind);
    j["key"] = Json::string(key);
    j["blob"] = Json::string(blob);
    return j;
  }
  if (verb == "shutdown") {
    Json j = Json::object();
    j["ok"] = Json::boolean(true);
    j["draining"] = Json::boolean(true);
    return j;
  }
  return error_reply("unknown verb \"" + verb + "\"");
}

void Server::handle_connection(Connection* conn) {
  net::FrameReader reader(conn->fd, options_.max_frame_bytes);
  std::string line;
  for (;;) {
    const net::ReadStatus status = reader.next(line);
    if (status == net::ReadStatus::kOversized) {
      // Reject-but-survive: the reader already discarded the line, so the
      // connection can keep serving well-formed requests.
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->fd < 0 ||
          !net::write_frame(
              conn->fd,
              error_reply("request line exceeds " +
                          std::to_string(options_.max_frame_bytes) + " bytes")
                  .dump())) {
        break;
      }
      continue;
    }
    if (status != net::ReadStatus::kOk) break;
    if (line.empty()) continue;
    Json reply;
    bool shutdown_after = false;
    try {
      const Json request = Json::parse(line);
      reply = handle_request(conn, request);
      const Json* verb = request.find("verb");
      shutdown_after = verb != nullptr && verb->is_string() &&
                       verb->as_string() == "shutdown";
    } catch (const std::exception& e) {
      reply = error_reply(e.what());
    }
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (!net::write_frame(conn->fd, reply.dump())) break;
    }
    if (shutdown_after) {
      request_shutdown();
      break;
    }
  }
  // Lock order: write_mutex before connections_mutex (close_all never takes
  // write_mutex, so there is no inversion).
  std::lock_guard<std::mutex> write_lock(conn->write_mutex);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace mp::svc

#else  // non-POSIX stub: the daemon is Unix-only; LocalService still works.

namespace mp::svc {

Server::Server(LocalService& service, std::string endpoint_uri,
               ServerOptions options)
    : service_(service),
      endpoint_uri_(std::move(endpoint_uri)),
      options_(options) {}
Server::~Server() = default;
bool Server::start(std::string* error) {
  if (error != nullptr) *error = "sockets unavailable on this platform";
  return false;
}
void Server::serve() {}
void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
}
bool Server::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}
void Server::close_all_connections() {}
Json Server::handle_request(Connection*, const Json&) { return Json(); }
void Server::handle_connection(Connection*) {}

}  // namespace mp::svc

#endif
