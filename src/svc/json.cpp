#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mp::svc {

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool Json::has(const std::string& key) const { return find(key) != nullptr; }

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it != object_.end() ? &it->second : nullptr;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_[key];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

// --- Parser (recursive descent) ---

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                    what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  int parse_hex4() {
    int v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= c - '0';
      else if (c >= 'a' && c <= 'f') v |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v |= c - 'A' + 10;
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, int cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("invalid number");
    }
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers (the common case: seeds, counts, ids) print without an
  // exponent or fraction so they re-parse bit-exactly and read naturally.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        out += value.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

}  // namespace mp::svc
