#include "svc/service.hpp"

#include <algorithm>
#include <vector>

#include "infer/engine.hpp"
#include "io/bookshelf.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/placer.hpp"
#include "svc/hash.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace mp::svc {

std::uint64_t placement_fingerprint(const netlist::Design& design) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    const geometry::Point p =
        design.node(static_cast<netlist::NodeId>(i)).position;
    h = fnv1a64_double(p.x, h);
    h = fnv1a64_double(p.y, h);
  }
  return h;
}

namespace {

// Shared CLI/service/bench knob mapping: JobSpec fields → place::PresetKnobs.
// The actual preset → options derivation lives in place::spec_from_preset,
// the single copy every front end uses (bit-identity by construction).
place::PresetKnobs knobs_for(const JobSpec& spec) {
  place::PresetKnobs knobs;
  knobs.episodes = spec.episodes;
  knobs.gamma = spec.gamma;
  knobs.grid = spec.grid;
  knobs.channels = spec.channels;
  knobs.blocks = spec.blocks;
  knobs.seed = spec.seed;
  knobs.regulate_radius = spec.regulate_radius;
  knobs.regulate_max_moves = spec.regulate_max_moves;
  knobs.regulate_frozen = spec.regulate_frozen;
  return knobs;
}

}  // namespace

LocalService::LocalService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_designs, options.cache_prepared,
             options.cache_weights, options.cache_placements) {
  if (options_.workers <= 0) {
    options_.workers = std::max(1, util::env_int("MP_WORKERS", 1));
  }
  if (options_.infer < 0) options_.infer = util::env_int("MP_INFER", 0);
  if (options_.infer > 0) {
    infer_engine_ = std::make_unique<infer::InferenceEngine>(
        infer::EngineOptions::from_env(&slo_ctx_.registry()));
  }
  scheduler_ = std::make_unique<Scheduler>(
      [this](const std::string& id, const JobSpec& spec,
             const util::CancelToken& cancel, const Scheduler::RunContext& ctx) {
        return execute(id, spec, cancel, ctx);
      },
      options_.max_queued, options_.workers, /*thread_budget=*/0,
      &slo_ctx_.registry());
  if (options_.stream_progress) {
    obs::set_span_listener(
        [this](const std::string& path, int depth, bool enter,
               double seconds) { on_span(path, depth, enter, seconds); });
  }
}

LocalService::~LocalService() {
  // Stop the worker before tearing down the listener plumbing it feeds.
  scheduler_->shutdown_now();
  if (options_.stream_progress) obs::set_span_listener({});
}

Scheduler::SubmitResult LocalService::submit(const JobSpec& spec) {
  return scheduler_->submit(spec);
}

bool LocalService::cancel(const std::string& id) {
  return scheduler_->cancel(id);
}

std::optional<JobSnapshot> LocalService::status(const std::string& id) const {
  return scheduler_->status(id);
}

std::vector<JobSnapshot> LocalService::jobs() const {
  return scheduler_->jobs();
}

bool LocalService::wait(const std::string& id, double timeout_s) const {
  return scheduler_->wait(id, timeout_s);
}

void LocalService::drain() { scheduler_->drain(); }

void LocalService::shutdown_now() { scheduler_->shutdown_now(); }

bool LocalService::accepting() const { return scheduler_->accepting(); }

int LocalService::add_progress_listener(ProgressFn fn) {
  std::lock_guard<std::mutex> lock(listeners_mutex_);
  const int token = next_listener_token_++;
  listeners_[token] = std::move(fn);
  return token;
}

void LocalService::remove_progress_listener(int token) {
  std::lock_guard<std::mutex> lock(listeners_mutex_);
  listeners_.erase(token);
}

void LocalService::on_span(const std::string& path, int depth, bool enter,
                           double seconds) {
  if (depth > options_.max_progress_depth) return;
  // The listener fires on whichever thread recorded the span, and every
  // thread working for a job carries that job's obs context (the scheduler
  // installs it; par propagates it to pool workers) — so the context tag is
  // the owning job even with many jobs in flight.  Spans outside any job
  // (other library users in-process) have no tag and are not streamed.
  const std::string& job_id = obs::current_context_tag();
  if (job_id.empty()) return;
  ProgressEvent event{job_id, path, depth, enter, seconds};
  std::vector<ProgressFn> sinks;
  {
    std::lock_guard<std::mutex> lock(listeners_mutex_);
    sinks.reserve(listeners_.size());
    for (const auto& [token, fn] : listeners_) sinks.push_back(fn);
  }
  for (const ProgressFn& fn : sinks) fn(event);
}

JobOutcome LocalService::execute(const std::string& id, const JobSpec& spec,
                                 const util::CancelToken& cancel,
                                 const Scheduler::RunContext& ctx) {
  // Each job owns a private telemetry context — a fresh registry tagged
  // with the job id, so every counter/span/JSONL line this job (and the
  // pool workers it fans out to) records is attributed to it — and a
  // private par:: pool sized to its thread lease, so concurrent jobs
  // partition the machine instead of fighting over the global pool.
  obs::Context obs_context(id);
  obs::ScopedContext scoped_obs(&obs_context);
  par::ThreadPool pool(ctx.threads);
  par::ScopedPool scoped_pool(&pool);

  JobOutcome out;
  std::string design_name;
  util::Timer run_timer;
  {
    obs::Span job_span("svc.job");
    const std::shared_ptr<const DesignArtifact> loaded =
        cache_.design_for(spec);
    design_name = loaded->design.name();
    netlist::Design design;

    place::PlacerSpec pspec =
        place::spec_from_preset(spec.preset, knobs_for(spec));
    pspec.cancel = cancel;
    // Set outside spec_from_preset on purpose: the engine pointer is a
    // runtime resource, not a knob, and it never changes the placement
    // (engine batching is per-sample bit-identical), so job results stay
    // comparable across engine-on and engine-off deployments.
    if (infer_engine_ != nullptr) {
      pspec.mcts_rl.mcts.infer_engine = infer_engine_.get();
      pspec.regulate.mcts.infer_engine = infer_engine_.get();
    }

    if (spec.preset == FlowPreset::kRegulate) {
      if (!spec.weights_path.empty()) {
        pspec.regulate.initial_parameters =
            cache_.weights_for(spec.weights_path)->parameters;
      }
      const std::shared_ptr<const PlacementArtifact> placement =
          cache_.placement_for(spec.initial_placement_path);
      const std::shared_ptr<const PreparedArtifact> prepared =
          cache_.prepared_regulate_for(loaded, placement,
                                       pspec.regulate.flow);
      design = prepared->design;  // base design + incumbent placement
      place::PreparedFlow warm{prepared->context};
      const place::PlaceResult r = place::run(design, pspec, &warm);
      out.hpwl = r.hpwl;
      out.coarse_wirelength = r.coarse_wirelength;
      out.cancelled = r.cancelled;
      out.finalized = r.finalized;
      out.macro_groups = r.macro_groups;
      out.input_hpwl = r.input_hpwl;
      out.moved_groups = r.moved_groups;
    } else if (spec.preset == FlowPreset::kMcts ||
               spec.preset == FlowPreset::kRlOnly) {
      if (!spec.weights_path.empty()) {
        pspec.mcts_rl.initial_parameters =
            cache_.weights_for(spec.weights_path)->parameters;
      }
      const std::shared_ptr<const PreparedArtifact> prepared =
          cache_.prepared_for(loaded, pspec.mcts_rl.flow);
      design = prepared->design;  // post-prepare copy the job may mutate
      place::PreparedFlow warm{prepared->context};
      const place::PlaceResult r = place::run(design, pspec, &warm);
      out.hpwl = r.hpwl;
      out.coarse_wirelength = r.coarse_wirelength;
      out.cancelled = r.cancelled;
      out.finalized = r.finalized;
      out.macro_groups = r.macro_groups;
    } else {
      design = loaded->design;
      const place::PlaceResult r = place::run(design, pspec);
      out.hpwl = r.hpwl;
      out.cancelled = r.cancelled;
      out.finalized = r.finalized;
    }

    out.placement_hash = placement_fingerprint(design);
    if (!spec.out_prefix.empty()) io::write_bookshelf(design, spec.out_prefix);
  }
  // Per-job copies of the SLO latencies (the scheduler records the
  // service-global ones): landing them in the job's own registry puts
  // p50/p95/p99 on this job's JSONL run line, attributable via "ctx".
  if (obs::enabled()) {
    const double run_s = run_timer.seconds();
    double queue_s = 0.0;
    // queue_seconds is set before the runner is invoked, so it is stable.
    if (const auto snap = scheduler_->status(id)) queue_s = snap->queue_seconds;
    obs::Registry& reg = obs_context.registry();
    reg.histogram("svc.queue_wait").record(queue_s);
    reg.histogram("svc.run_time").record(run_s);
    reg.histogram("svc.submit_to_result").record(queue_s + run_s);
  }
  obs::write_run_report("svc.job", {{"job_id", id},
                                    {"preset", preset_name(spec.preset)},
                                    {"design", design_name}});
  return out;
}

Json LocalService::job_to_json(const JobSnapshot& snap) {
  Json j = Json::object();
  j["id"] = Json::string(snap.id);
  j["state"] = Json::string(job_state_name(snap.state));
  j["seq"] = Json::number(static_cast<double>(snap.seq));
  j["queue_s"] = Json::number(snap.queue_seconds);
  j["run_s"] = Json::number(snap.run_seconds);
  if (!snap.error.empty()) j["error"] = Json::string(snap.error);
  j["spec"] = job_spec_to_json(snap.spec);
  if (snap.state == JobState::kDone || snap.state == JobState::kCancelled) {
    Json o = Json::object();
    o["hpwl"] = Json::number(snap.outcome.hpwl);
    o["coarse_wirelength"] = Json::number(snap.outcome.coarse_wirelength);
    o["cancelled"] = Json::boolean(snap.outcome.cancelled);
    o["finalized"] = Json::boolean(snap.outcome.finalized);
    o["placement_hash"] = Json::string(hash_hex(snap.outcome.placement_hash));
    o["macro_groups"] = Json::number(snap.outcome.macro_groups);
    // ECO-only fields, gated so v1 job documents keep their exact shape.
    if (snap.spec.preset == FlowPreset::kRegulate) {
      o["input_hpwl"] = Json::number(snap.outcome.input_hpwl);
      o["moved_groups"] = Json::number(snap.outcome.moved_groups);
    }
    j["outcome"] = o;
  }
  return j;
}

bool LocalService::artifact_blob(const std::string& kind,
                                 const std::string& key, std::string* blob) {
  if (kind == "design") {
    if (const auto a = cache_.peek_design(key)) {
      *blob = net::serialize_design(a->design);
      return true;
    }
    return false;
  }
  if (kind == "prepared") {
    if (const auto a = cache_.peek_prepared(key)) {
      *blob = net::serialize_prepared(a->design, a->context);
      return true;
    }
    return false;
  }
  if (kind == "weights") {
    if (const auto a = cache_.peek_weights(key)) {
      *blob = net::serialize_weights(a->parameters);
      return true;
    }
    return false;
  }
  if (kind == "placement") {
    if (const auto a = cache_.peek_placement(key)) {
      *blob = net::serialize_placement(a->entries);
      return true;
    }
    return false;
  }
  return false;
}

void LocalService::refresh_slo_cache_gauges() {
  const CacheStats cache = cache_stats();
  obs::Registry& reg = slo_ctx_.registry();
  reg.gauge("svc.cache_hit")
      .set(static_cast<double>(cache.design_hits + cache.prepared_hits +
                               cache.weights_hits + cache.placement_hits));
  reg.gauge("svc.cache_miss")
      .set(static_cast<double>(cache.design_misses + cache.prepared_misses +
                               cache.weights_misses + cache.placement_misses));
}

namespace {

Json histogram_to_json(const obs::HistogramSnapshot& h) {
  Json j = Json::object();
  j["count"] = Json::number(static_cast<long long>(h.count));
  j["sum"] = Json::number(h.sum);
  j["min"] = Json::number(h.min);
  j["max"] = Json::number(h.max);
  j["mean"] = Json::number(h.mean());
  j["p50"] = Json::number(h.quantile(0.5));
  j["p90"] = Json::number(h.quantile(0.9));
  j["p95"] = Json::number(h.quantile(0.95));
  j["p99"] = Json::number(h.quantile(0.99));
  return j;
}

}  // namespace

Json LocalService::metrics_json() {
  refresh_slo_cache_gauges();
  const obs::RegistrySnapshot snap = slo_ctx_.registry().snapshot();
  Json j = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) {
    counters[name] = Json::number(value);
  }
  j["counters"] = counters;
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) {
    gauges[name] = Json::number(value);
  }
  j["gauges"] = gauges;
  Json hists = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    hists[name] = histogram_to_json(h);
  }
  j["histograms"] = hists;
  j["workers"] = Json::number(workers());
  j["threads"] = Json::number(par::num_threads());
  return j;
}

std::string LocalService::metrics_prom() {
  refresh_slo_cache_gauges();
  return obs::prometheus_text(slo_ctx_.registry().snapshot());
}

Json LocalService::stats_json() const {
  Json j = Json::object();
  long long queued = 0, running = 0, done = 0, failed = 0, cancelled = 0;
  for (const JobSnapshot& snap : jobs()) {
    switch (snap.state) {
      case JobState::kQueued: ++queued; break;
      case JobState::kRunning: ++running; break;
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
    }
  }
  Json jobs_obj = Json::object();
  jobs_obj["queued"] = Json::number(queued);
  jobs_obj["running"] = Json::number(running);
  jobs_obj["done"] = Json::number(done);
  jobs_obj["failed"] = Json::number(failed);
  jobs_obj["cancelled"] = Json::number(cancelled);
  j["jobs"] = jobs_obj;
  const CacheStats cache = cache_stats();
  Json cache_obj = Json::object();
  cache_obj["design_hits"] = Json::number(cache.design_hits);
  cache_obj["design_misses"] = Json::number(cache.design_misses);
  cache_obj["prepared_hits"] = Json::number(cache.prepared_hits);
  cache_obj["prepared_misses"] = Json::number(cache.prepared_misses);
  cache_obj["weights_hits"] = Json::number(cache.weights_hits);
  cache_obj["weights_misses"] = Json::number(cache.weights_misses);
  cache_obj["placement_hits"] = Json::number(cache.placement_hits);
  cache_obj["placement_misses"] = Json::number(cache.placement_misses);
  cache_obj["design_peer_hits"] = Json::number(cache.design_peer_hits);
  cache_obj["prepared_peer_hits"] = Json::number(cache.prepared_peer_hits);
  cache_obj["weights_peer_hits"] = Json::number(cache.weights_peer_hits);
  cache_obj["placement_peer_hits"] = Json::number(cache.placement_peer_hits);
  j["cache"] = cache_obj;
  j["workers"] = Json::number(workers());
  j["threads"] = Json::number(par::num_threads());
  j["accepting"] = Json::boolean(accepting());
  return j;
}

}  // namespace mp::svc
