#include "svc/budget.hpp"

#include <algorithm>

namespace mp::svc {

ThreadLease& ThreadLease::operator=(ThreadLease&& other) noexcept {
  if (this != &other) {
    release();
    arbiter_ = other.arbiter_;
    threads_ = other.threads_;
    other.arbiter_ = nullptr;
    other.threads_ = 0;
  }
  return *this;
}

void ThreadLease::release() {
  if (arbiter_ != nullptr) {
    arbiter_->release_threads(threads_);
    arbiter_ = nullptr;
    threads_ = 0;
  }
}

ThreadLease ThreadArbiter::acquire(int requested) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int want = requested > 0 ? std::min(requested, total_) : total_;
  const int grant = std::max(1, std::min(want, total_ - leased_));
  leased_ += grant;
  return ThreadLease(this, grant);
}

void ThreadArbiter::release_threads(int threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  leased_ -= threads;
}

}  // namespace mp::svc
