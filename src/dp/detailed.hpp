#pragma once
// Detailed placement refinement on a row-legal placement: greedy intra-row
// cell swaps and whole-row position re-optimization ("iterative local
// refinement"), preserving legality.

#include "netlist/design.hpp"

namespace mp::dp {

struct DetailedOptions {
  int passes = 2;                 ///< refinement sweeps over all rows
  /// Consider swapping each cell with up to this many of its neighbors in
  /// the same row (by order).
  int swap_window = 2;
};

struct DetailedResult {
  long long swaps_applied = 0;
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
};

/// Greedy legality-preserving refinement.  Requires a row-legal input (cells
/// already aligned to rows, e.g. from legalize_rows); cells only move within
/// their rows.
DetailedResult refine_detailed(netlist::Design& design,
                               const DetailedOptions& options = {});

}  // namespace mp::dp
