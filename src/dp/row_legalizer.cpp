#include "dp/row_legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/log.hpp"

namespace mp::dp {

using netlist::Design;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

// One free horizontal segment of a row, tracked as disjoint free intervals
// (placing a cell in the middle splits its interval, so no space is lost).
struct Segment {
  double left = 0.0;
  double right = 0.0;
  std::vector<std::pair<double, double>> free_intervals;
};

struct Row {
  double y = 0.0;
  std::vector<Segment> segments;
};

double most_common_height(const Design& design) {
  std::map<double, int> counts;
  for (NodeId id : design.std_cells()) {
    counts[design.node(id).height]++;
  }
  double best = 12.0;
  int best_count = 0;
  for (const auto& [h, c] : counts) {
    if (c > best_count) {
      best_count = c;
      best = h;
    }
  }
  return best;
}

}  // namespace

RowLegalizeResult legalize_rows(Design& design,
                                const RowLegalizeOptions& options) {
  RowLegalizeResult result;
  const geometry::Rect region = design.region();
  const auto& cells = design.std_cells();
  if (cells.empty()) return result;

  double row_height = options.row_height;
  if (row_height <= 0.0) row_height = most_common_height(design);
  const int num_rows =
      std::max(1, static_cast<int>(std::floor(region.h / row_height)));
  result.rows = num_rows;

  double site_width = options.site_width;
  if (site_width <= 0.0) {
    std::vector<double> widths;
    widths.reserve(cells.size());
    for (NodeId id : cells) widths.push_back(design.node(id).width);
    std::nth_element(widths.begin(), widths.begin() + widths.size() / 2,
                     widths.end());
    site_width = std::max(1.0, widths[widths.size() / 2] / 2.0);
  }

  // Blockages: all macros, plus std cells taller than one row.
  std::vector<geometry::Rect> blockages;
  for (NodeId id : design.macros()) blockages.push_back(design.node(id).rect());
  std::vector<NodeId> movable;
  for (NodeId id : cells) {
    if (design.node(id).height > row_height * 1.5) {
      blockages.push_back(design.node(id).rect());
    } else {
      movable.push_back(id);
    }
  }

  // Build rows and carve free segments around blockage overlaps.
  std::vector<Row> rows(static_cast<std::size_t>(num_rows));
  for (int r = 0; r < num_rows; ++r) {
    Row& row = rows[static_cast<std::size_t>(r)];
    row.y = region.y + r * row_height;
    const geometry::Rect strip(region.x, row.y, region.w, row_height);
    // Collect blocked x-intervals.
    std::vector<std::pair<double, double>> blocked;
    for (const geometry::Rect& b : blockages) {
      if (!strip.overlaps(b)) continue;
      blocked.emplace_back(std::max(region.x, b.left()),
                           std::min(region.right(), b.right()));
    }
    std::sort(blocked.begin(), blocked.end());
    double cursor = region.x;
    for (const auto& [lo, hi] : blocked) {
      if (lo > cursor) {
        row.segments.push_back({cursor, lo, {{cursor, lo}}});
      }
      cursor = std::max(cursor, hi);
    }
    if (cursor < region.right()) {
      row.segments.push_back(
          {cursor, region.right(), {{cursor, region.right()}}});
    }
  }

  // Greedy Tetris: process cells in order of x (left to right), assigning
  // each to the (row, segment) minimizing displacement.
  std::sort(movable.begin(), movable.end(), [&](NodeId a, NodeId b) {
    return design.node(a).position.x < design.node(b).position.x;
  });

  for (NodeId id : movable) {
    netlist::Node& cell = design.node(id);
    const geometry::Point desired = cell.position;
    const int desired_row = std::clamp(
        static_cast<int>(std::floor((desired.y - region.y) / row_height)), 0,
        num_rows - 1);

    double best_cost = std::numeric_limits<double>::infinity();
    Segment* best_segment = nullptr;
    std::size_t best_interval = 0;
    double best_x = 0.0, best_y = 0.0;
    // Search rows outward from the desired row; early-exit once the
    // row-distance alone exceeds the best cost.
    for (int dr = 0; dr < num_rows; ++dr) {
      bool any_candidate_row = false;
      for (const int r : {desired_row - dr, desired_row + dr}) {
        if (r < 0 || r >= num_rows) continue;
        if (dr != 0 && r == desired_row) continue;
        any_candidate_row = true;
        Row& row = rows[static_cast<std::size_t>(r)];
        const double dy = std::abs(row.y - desired.y);
        if (dy >= best_cost) continue;
        for (Segment& seg : row.segments) {
          for (std::size_t k = 0; k < seg.free_intervals.size(); ++k) {
            const auto [lo, hi] = seg.free_intervals[k];
            if (hi - lo < cell.width) continue;
            // Best x in [lo, hi - width], snapped to the site grid.
            double x = std::clamp(desired.x, lo, hi - cell.width);
            x = lo + std::floor((x - lo) / site_width) * site_width;
            x = std::clamp(x, lo, hi - cell.width);
            const double cost = std::abs(x - desired.x) + dy;
            if (cost < best_cost) {
              best_cost = cost;
              best_segment = &seg;
              best_interval = k;
              best_x = x;
              best_y = row.y;
            }
          }
        }
      }
      if (!any_candidate_row && dr > 0) break;
      if (best_segment != nullptr &&
          static_cast<double>(dr) * row_height > best_cost) {
        break;
      }
    }

    if (best_segment == nullptr) {
      ++result.failed_cells;
      continue;
    }
    cell.position = {best_x, best_y};
    // Carve the cell out of its free interval (split into the remainders).
    {
      const auto [lo, hi] = best_segment->free_intervals[best_interval];
      best_segment->free_intervals.erase(
          best_segment->free_intervals.begin() +
          static_cast<long>(best_interval));
      constexpr double kMin = 1e-9;
      if (best_x - lo > kMin) {
        best_segment->free_intervals.emplace_back(lo, best_x);
      }
      if (hi - (best_x + cell.width) > kMin) {
        best_segment->free_intervals.emplace_back(best_x + cell.width, hi);
      }
    }
    ++result.legalized_cells;
    const double displacement = std::abs(best_x - desired.x) +
                                std::abs(best_y - desired.y);
    result.total_displacement += displacement;
    result.max_displacement = std::max(result.max_displacement, displacement);
  }

  util::log_debug() << "legalize_rows: " << result.legalized_cells
                    << " cells into " << result.rows << " rows, "
                    << result.failed_cells << " failed";
  return result;
}

bool cells_are_legal(const Design& design) {
  // Sweep by x over cells + macros.
  struct Item {
    geometry::Rect rect;
    bool is_cell;
  };
  std::vector<Item> items;
  for (NodeId id : design.std_cells()) {
    items.push_back({design.node(id).rect(), true});
  }
  for (NodeId id : design.macros()) {
    items.push_back({design.node(id).rect(), false});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.rect.left() < b.rect.left();
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (items[j].rect.left() >= items[i].rect.right()) break;
      if (!items[i].is_cell && !items[j].is_cell) continue;  // macros: not ours
      // Abutting cells can interpenetrate by an ulp after arithmetic on
      // their edges; only material overlap counts.
      if (geometry::overlap_area(items[i].rect, items[j].rect) > 1e-6) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mp::dp
