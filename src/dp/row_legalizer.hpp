#pragma once
// Row-based standard-cell legalization (Tetris/Abacus-style): cells are
// assigned to uniform placement rows, macros and fixed blocks carve the rows
// into free segments, and each row's cells are packed into its segments in
// order, minimizing displacement from the global-placement positions.
//
// The analytical global placer (gp/) produces a spread but overlapping cell
// placement — this pass makes it row-legal, completing the DREAMPlace-role
// substrate (its GP + LG + DP pipeline).

#include <vector>

#include "netlist/design.hpp"

namespace mp::dp {

struct RowLegalizeOptions {
  /// Row height; 0 derives it from the most common std-cell height.
  double row_height = 0.0;
  /// Cells are placed on a site grid of this width inside rows; 0 = derive
  /// (half the median cell width, at least 1).
  double site_width = 0.0;
};

struct RowLegalizeResult {
  int rows = 0;
  int legalized_cells = 0;
  int failed_cells = 0;       ///< cells that did not fit in any segment
  double total_displacement = 0.0;
  double max_displacement = 0.0;
};

/// Legalizes all movable std cells of `design` into rows.  Macros (movable
/// and fixed) and pads act as blockages.  Cell heights are preserved; cells
/// taller than one row are treated as blockages too (multi-row cells are out
/// of scope for this reproduction).
RowLegalizeResult legalize_rows(netlist::Design& design,
                                const RowLegalizeOptions& options = {});

/// True when no two std cells overlap and no cell overlaps a macro
/// (utility for tests and assertions; O(n log n) sweep).
bool cells_are_legal(const netlist::Design& design);

}  // namespace mp::dp
