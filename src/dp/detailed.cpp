#include "dp/detailed.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace mp::dp {

using netlist::Design;
using netlist::NetId;
using netlist::NodeId;

namespace {

// HPWL of the nets incident to one or two cells.
double local_hpwl(const Design& design, const std::vector<NetId>& nets) {
  double total = 0.0;
  for (NetId n : nets) {
    total += design.net(n).weight * design.net_hpwl(n);
  }
  return total;
}

std::vector<NetId> merged_nets(const Design& design, NodeId a, NodeId b) {
  const auto& adjacency = design.node_nets();
  std::vector<NetId> nets = adjacency[static_cast<std::size_t>(a)];
  nets.insert(nets.end(), adjacency[static_cast<std::size_t>(b)].begin(),
              adjacency[static_cast<std::size_t>(b)].end());
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

}  // namespace

DetailedResult refine_detailed(Design& design, const DetailedOptions& options) {
  DetailedResult result;
  result.hpwl_before = design.total_hpwl();

  // Obstacles a swapped cell must not land on: macros and oversized cells.
  std::vector<geometry::Rect> blockages;
  std::set<NodeId> oversized;
  for (NodeId id : design.macros()) {
    blockages.push_back(design.node(id).rect());
  }
  {
    std::map<double, int> height_counts;
    for (NodeId id : design.std_cells()) {
      height_counts[design.node(id).height]++;
    }
    double modal_height = 12.0;
    int best = 0;
    for (const auto& [h, c] : height_counts) {
      if (c > best) {
        best = c;
        modal_height = h;
      }
    }
    for (NodeId id : design.std_cells()) {
      if (design.node(id).height > modal_height * 1.5) {
        blockages.push_back(design.node(id).rect());
        oversized.insert(id);
      }
    }
  }
  const auto hits_blockage = [&](const geometry::Rect& rect) {
    for (const geometry::Rect& b : blockages) {
      if (rect.overlaps(b)) return true;
    }
    return false;
  };

  // Group single-row cells by row (y coordinate), ordered by x; oversized
  // cells are immovable blockages.
  std::map<double, std::vector<NodeId>> rows;
  for (NodeId id : design.std_cells()) {
    if (oversized.count(id) != 0) continue;
    rows[design.node(id).position.y].push_back(id);
  }
  for (auto& [y, row] : rows) {
    (void)y;
    std::sort(row.begin(), row.end(), [&](NodeId a, NodeId b) {
      return design.node(a).position.x < design.node(b).position.x;
    });
  }

  for (int pass = 0; pass < options.passes; ++pass) {
    long long swaps_this_pass = 0;
    for (auto& [y, row] : rows) {
      (void)y;
      for (std::size_t i = 0; i < row.size(); ++i) {
        for (int w = 1; w <= options.swap_window; ++w) {
          const std::size_t j = i + static_cast<std::size_t>(w);
          if (j >= row.size()) break;
          NodeId a = row[i];
          NodeId b = row[j];
          netlist::Node& na = design.node(a);
          netlist::Node& nb = design.node(b);
          // Legality-preserving swaps:
          //  * adjacent cells (w == 1) re-pack inside their combined span,
          //  * non-adjacent swaps require equal widths (pure exchange).
          if (w > 1 && na.width != nb.width) continue;

          const std::vector<NetId> nets = merged_nets(design, a, b);
          const double before = local_hpwl(design, nets);
          const double ax = na.position.x;
          const double bx = nb.position.x;
          if (w == 1) {
            // b takes the left edge of the span; a abuts the span's right
            // end.  Both stay inside [ax, bx + nb.width].
            nb.position.x = ax;
            na.position.x = bx + nb.width - na.width;
          } else {
            na.position.x = bx;
            nb.position.x = ax;
          }
          const double after = local_hpwl(design, nets);
          const bool illegal =
              hits_blockage(na.rect()) || hits_blockage(nb.rect());
          if (!illegal && after + 1e-12 < before) {
            std::swap(row[i], row[j]);
            ++swaps_this_pass;
          } else {
            na.position.x = ax;
            nb.position.x = bx;
          }
        }
      }
    }
    result.swaps_applied += swaps_this_pass;
    if (swaps_this_pass == 0) break;
  }

  result.hpwl_after = design.total_hpwl();
  return result;
}

}  // namespace mp::dp
