#include "qp/b2b.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/cg.hpp"
#include "linalg/sparse.hpp"

namespace mp::qp {

using netlist::Design;
using netlist::Net;
using netlist::NodeId;
using netlist::PinRef;

namespace {

// One axis of the B2B system over `movable` variables (no star nodes: B2B
// replaces the star/clique entirely).
struct Axis {
  linalg::TripletBuilder triplets;
  linalg::Vec rhs;
  explicit Axis(std::size_t n) : triplets(n), rhs(n, 0.0) {}

  void connect_vars(std::size_t i, std::size_t j, double o_i, double o_j,
                    double w) {
    if (i == j) return;
    triplets.add_connection(i, j, w);
    rhs[i] += w * (o_j - o_i);
    rhs[j] += w * (o_i - o_j);
  }
  void connect_fixed(std::size_t i, double o_i, double c, double w) {
    triplets.add_diagonal(i, w);
    rhs[i] += w * (c - o_i);
  }
};

struct PinInfo {
  int var;               // -1 when fixed
  double offset;         // offset along the axis from the node center
  double position;       // absolute pin coordinate along the axis
};

}  // namespace

B2bResult solve_b2b_placement(Design& design,
                              const std::vector<NodeId>& movable,
                              const std::vector<Anchor>& anchors,
                              const B2bOptions& options) {
  B2bResult result;
  if (movable.empty()) {
    result.hpwl = design.total_hpwl();
    return result;
  }
  const geometry::Rect region = design.region();
  const double diagonal = std::hypot(region.w, region.h);
  const double min_distance =
      std::max(1e-12, options.min_distance_fraction * diagonal);

  std::vector<int> var_of_node(design.num_nodes(), -1);
  for (std::size_t i = 0; i < movable.size(); ++i) {
    var_of_node[static_cast<std::size_t>(movable[i])] = static_cast<int>(i);
  }
  const std::size_t n = movable.size();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Axis sys_x(n), sys_y(n);

    for (const Net& net : design.nets()) {
      const int degree = static_cast<int>(net.pins.size());
      if (degree < 2 || degree > options.max_net_degree) continue;

      // Gather per-axis pin info.
      std::vector<PinInfo> px, py;
      px.reserve(net.pins.size());
      py.reserve(net.pins.size());
      for (const PinRef& pin : net.pins) {
        const netlist::Node& node = design.node(pin.node);
        const geometry::Point p = design.pin_position(pin);
        const int var = var_of_node[static_cast<std::size_t>(pin.node)];
        px.push_back({var, pin.dx - node.width / 2.0, p.x});
        py.push_back({var, pin.dy - node.height / 2.0, p.y});
      }

      // B2B model per axis: find min/max pins; connect boundary-boundary and
      // boundary-inner pairs with weight w_net * 2/((p-1)|Δ|).
      const auto stamp_axis = [&](Axis& sys, std::vector<PinInfo>& pins) {
        std::size_t lo = 0, hi = 0;
        for (std::size_t k = 1; k < pins.size(); ++k) {
          if (pins[k].position < pins[lo].position) lo = k;
          if (pins[k].position > pins[hi].position) hi = k;
        }
        if (lo == hi) hi = (lo + 1) % pins.size();
        const double base = net.weight * 2.0 / static_cast<double>(degree - 1);
        const auto connect = [&](std::size_t a, std::size_t b) {
          if (a == b) return;
          const double dist =
              std::max(min_distance,
                       std::abs(pins[a].position - pins[b].position));
          const double w = base / dist;
          const PinInfo& pa = pins[a];
          const PinInfo& pb = pins[b];
          if (pa.var >= 0 && pb.var >= 0) {
            sys.connect_vars(static_cast<std::size_t>(pa.var),
                             static_cast<std::size_t>(pb.var), pa.offset,
                             pb.offset, w);
          } else if (pa.var >= 0) {
            sys.connect_fixed(static_cast<std::size_t>(pa.var), pa.offset,
                              pb.position, w);
          } else if (pb.var >= 0) {
            sys.connect_fixed(static_cast<std::size_t>(pb.var), pb.offset,
                              pa.position, w);
          }
        };
        connect(lo, hi);
        for (std::size_t k = 0; k < pins.size(); ++k) {
          if (k == lo || k == hi) continue;
          connect(lo, k);
          connect(k, hi);
        }
      };
      stamp_axis(sys_x, px);
      stamp_axis(sys_y, py);
    }

    for (const Anchor& anchor : anchors) {
      const int var = var_of_node[static_cast<std::size_t>(anchor.node)];
      assert(var >= 0 && "anchor on non-movable node");
      sys_x.connect_fixed(static_cast<std::size_t>(var), 0.0, anchor.target.x,
                          anchor.weight);
      sys_y.connect_fixed(static_cast<std::size_t>(var), 0.0, anchor.target.y,
                          anchor.weight);
    }

    // Regularize disconnected variables.
    {
      linalg::CsrMatrix probe = linalg::CsrMatrix::from_triplets(sys_x.triplets);
      const linalg::Vec diag = probe.diagonal();
      const geometry::Point center = region.center();
      for (std::size_t i = 0; i < n; ++i) {
        if (diag[i] <= 0.0) {
          sys_x.connect_fixed(i, 0.0, center.x, 1e-6);
          sys_y.connect_fixed(i, 0.0, center.y, 1e-6);
        }
      }
    }

    const linalg::CsrMatrix ax = linalg::CsrMatrix::from_triplets(sys_x.triplets);
    const linalg::CsrMatrix ay = linalg::CsrMatrix::from_triplets(sys_y.triplets);
    linalg::Vec x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      const geometry::Point c = design.node(movable[i]).center();
      x[i] = c.x;
      y[i] = c.y;
    }
    linalg::conjugate_gradient(ax, sys_x.rhs, x, options.cg);
    linalg::conjugate_gradient(ay, sys_y.rhs, y, options.cg);

    double movement = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      netlist::Node& node = design.node(movable[i]);
      const geometry::Point old_center = node.center();
      const double nx = geometry::fit_interval(x[i] - node.width / 2.0,
                                               node.width, region.left(),
                                               region.right());
      const double ny = geometry::fit_interval(y[i] - node.height / 2.0,
                                               node.height, region.bottom(),
                                               region.top());
      node.position = {nx, ny};
      movement += geometry::manhattan(old_center, node.center());
    }
    movement /= static_cast<double>(n);
    result.iterations = iter + 1;
    result.final_movement = movement;
    if (movement < options.convergence_fraction * diagonal) break;
  }
  result.hpwl = design.total_hpwl();
  return result;
}

}  // namespace mp::qp
