#include "qp/quadratic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace mp::qp {

using netlist::Design;
using netlist::Net;
using netlist::NodeId;
using netlist::PinRef;

namespace {

// Per-axis assembled system: A z = b over movable variables + star variables.
struct AxisSystem {
  linalg::TripletBuilder triplets;
  linalg::Vec rhs;
  explicit AxisSystem(std::size_t n) : triplets(n), rhs(n, 0.0) {}

  // Quadratic term w * (z_i + o_i - z_j - o_j)^2 between two variables.
  void connect_vars(std::size_t i, std::size_t j, double o_i, double o_j,
                    double w) {
    if (i == j) return;
    triplets.add_connection(i, j, w);
    rhs[i] += w * (o_j - o_i);
    rhs[j] += w * (o_i - o_j);
  }

  // Quadratic term w * (z_i + o_i - c)^2 against a fixed coordinate c.
  void connect_fixed(std::size_t i, double o_i, double c, double w) {
    triplets.add_diagonal(i, w);
    rhs[i] += w * (c - o_i);
  }
};

}  // namespace

QpResult solve_quadratic_placement(Design& design,
                                   const std::vector<NodeId>& movable,
                                   const std::vector<Anchor>& anchors,
                                   const std::vector<BoxBound>& bounds,
                                   const QpOptions& options) {
  // Variable mapping: movable nodes first, star variables appended later.
  std::vector<int> var_of_node(design.num_nodes(), -1);
  for (std::size_t i = 0; i < movable.size(); ++i) {
    var_of_node[static_cast<std::size_t>(movable[i])] = static_cast<int>(i);
  }

  // Count star variables.
  std::size_t num_star = 0;
  for (const Net& net : design.nets()) {
    const int degree = static_cast<int>(net.pins.size());
    if (degree < 2 || degree > options.max_net_degree) continue;
    if (degree > options.clique_max_degree) ++num_star;
  }
  const std::size_t n_vars = movable.size() + num_star;
  if (movable.empty()) return {};

  AxisSystem sys_x(n_vars), sys_y(n_vars);

  // Assembles one pin's contribution descriptor.
  struct PinInfo {
    int var;          // -1 when fixed
    double off_x, off_y;  // pin offset from the node *center* (variable)
    double fix_x, fix_y;  // absolute pin location when fixed
  };
  const auto pin_info = [&](const PinRef& pin) {
    const netlist::Node& node = design.node(pin.node);
    PinInfo info{};
    info.var = var_of_node[static_cast<std::size_t>(pin.node)];
    info.off_x = pin.dx - node.width / 2.0;
    info.off_y = pin.dy - node.height / 2.0;
    const geometry::Point p = design.pin_position(pin);
    info.fix_x = p.x;
    info.fix_y = p.y;
    return info;
  };

  std::size_t next_star = movable.size();
  for (const Net& net : design.nets()) {
    const int degree = static_cast<int>(net.pins.size());
    if (degree < 2 || degree > options.max_net_degree) continue;

    if (degree <= options.clique_max_degree) {
      const double w = net.weight / static_cast<double>(degree - 1);
      for (int a = 0; a < degree; ++a) {
        const PinInfo pa = pin_info(net.pins[static_cast<std::size_t>(a)]);
        for (int b = a + 1; b < degree; ++b) {
          const PinInfo pb = pin_info(net.pins[static_cast<std::size_t>(b)]);
          if (pa.var >= 0 && pb.var >= 0) {
            sys_x.connect_vars(static_cast<std::size_t>(pa.var),
                               static_cast<std::size_t>(pb.var), pa.off_x,
                               pb.off_x, w);
            sys_y.connect_vars(static_cast<std::size_t>(pa.var),
                               static_cast<std::size_t>(pb.var), pa.off_y,
                               pb.off_y, w);
          } else if (pa.var >= 0) {
            sys_x.connect_fixed(static_cast<std::size_t>(pa.var), pa.off_x,
                                pb.fix_x, w);
            sys_y.connect_fixed(static_cast<std::size_t>(pa.var), pa.off_y,
                                pb.fix_y, w);
          } else if (pb.var >= 0) {
            sys_x.connect_fixed(static_cast<std::size_t>(pb.var), pb.off_x,
                                pa.fix_x, w);
            sys_y.connect_fixed(static_cast<std::size_t>(pb.var), pb.off_y,
                                pa.fix_y, w);
          }
        }
      }
    } else {
      // Star model: one extra variable per large net; edge weight scaled so
      // the star is wirelength-equivalent to the clique (FastPlace scaling).
      const std::size_t star = next_star++;
      const double w =
          net.weight * static_cast<double>(degree) /
          static_cast<double>(degree - 1);
      bool star_used = false;
      for (const PinRef& pin : net.pins) {
        const PinInfo p = pin_info(pin);
        if (p.var >= 0) {
          sys_x.connect_vars(static_cast<std::size_t>(p.var), star, p.off_x,
                             0.0, w);
          sys_y.connect_vars(static_cast<std::size_t>(p.var), star, p.off_y,
                             0.0, w);
          star_used = true;
        } else {
          sys_x.connect_fixed(star, 0.0, p.fix_x, w);
          sys_y.connect_fixed(star, 0.0, p.fix_y, w);
          star_used = true;
        }
      }
      if (!star_used) {
        // Keep the system non-singular if the net had no usable pins.
        sys_x.triplets.add_diagonal(star, 1.0);
        sys_y.triplets.add_diagonal(star, 1.0);
      }
    }
  }

  // Anchors.
  for (const Anchor& anchor : anchors) {
    const int var = var_of_node[static_cast<std::size_t>(anchor.node)];
    assert(var >= 0 && "anchor on non-movable node");
    sys_x.connect_fixed(static_cast<std::size_t>(var), 0.0, anchor.target.x,
                        anchor.weight);
    sys_y.connect_fixed(static_cast<std::size_t>(var), 0.0, anchor.target.y,
                        anchor.weight);
  }

  // Regularize isolated movable nodes (no net, no anchor) toward the region
  // center so the system stays SPD.
  const geometry::Point region_center = design.region().center();
  {
    // Detect zero-diagonal variables by assembling once and inspecting.
    linalg::CsrMatrix probe = linalg::CsrMatrix::from_triplets(sys_x.triplets);
    const linalg::Vec diag = probe.diagonal();
    for (std::size_t i = 0; i < n_vars; ++i) {
      if (diag[i] <= 0.0) {
        sys_x.connect_fixed(i, 0.0, region_center.x, 1e-6);
        sys_y.connect_fixed(i, 0.0, region_center.y, 1e-6);
      }
    }
  }

  const linalg::CsrMatrix ax = linalg::CsrMatrix::from_triplets(sys_x.triplets);
  const linalg::CsrMatrix ay = linalg::CsrMatrix::from_triplets(sys_y.triplets);

  // Warm start from current centers.
  linalg::Vec x(n_vars, region_center.x), y(n_vars, region_center.y);
  for (std::size_t i = 0; i < movable.size(); ++i) {
    const geometry::Point c = design.node(movable[i]).center();
    x[i] = c.x;
    y[i] = c.y;
  }

  QpResult result;
  result.cg_x = linalg::conjugate_gradient(ax, sys_x.rhs, x, options.cg);
  result.cg_y = linalg::conjugate_gradient(ay, sys_y.rhs, y, options.cg);
  // The CG layer certifies its own residuals; here guard the QP contract:
  // the coordinates written back into the design must be finite numbers.
  if (check::validate_level() >= 1) {
    for (std::size_t i = 0; i < movable.size(); ++i) {
      MP_CHECK(std::isfinite(x[i]) && std::isfinite(y[i]),
               "QP solution for node %d not finite (x=%g, y=%g)", movable[i],
               x[i], y[i]);
    }
  }
  MP_OBS_COUNT("qp.solves", 1);
  MP_OBS_COUNT("qp.cg_iterations", result.cg_x.iterations + result.cg_y.iterations);
  MP_OBS_HIST("qp.cg_iterations_per_solve",
              static_cast<double>(result.cg_x.iterations + result.cg_y.iterations));

  // Write back (center -> lower-left), applying box bounds then the region
  // clamp.
  std::vector<int> bound_of_node(design.num_nodes(), -1);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bound_of_node[static_cast<std::size_t>(bounds[i].node)] = static_cast<int>(i);
  }
  const geometry::Rect region = design.region();
  for (std::size_t i = 0; i < movable.size(); ++i) {
    netlist::Node& node = design.node(movable[i]);
    double cx = x[i];
    double cy = y[i];
    const int b = bound_of_node[static_cast<std::size_t>(movable[i])];
    if (b >= 0) {
      const geometry::Rect& box = bounds[static_cast<std::size_t>(b)].box;
      cx = std::clamp(cx, box.left(), box.right());
      cy = std::clamp(cy, box.bottom(), box.top());
    }
    if (options.clamp_to_region) {
      node.position = {
          geometry::fit_interval(cx - node.width / 2.0, node.width,
                                 region.left(), region.right()),
          geometry::fit_interval(cy - node.height / 2.0, node.height,
                                 region.bottom(), region.top())};
    } else {
      node.position = {cx - node.width / 2.0, cy - node.height / 2.0};
    }
  }
  return result;
}

}  // namespace mp::qp
