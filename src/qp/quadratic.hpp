#pragma once
// Quadratic placement: minimizes the clique/star quadratic wirelength proxy
// over a chosen set of movable nodes, everything else (pads, preplaced
// macros, already-fixed groups) acting as fixed anchors.  This is the QP
// used by
//   * the initial placement that seeds clustering (Sec. II-A, via [23]),
//   * legalization steps 1-2 (cell groups after macro groups are pinned to
//     grid centers, then macro decomposition inside grids, Sec. II-B),
//   * the global placer's wirelength phase (gp/).
//
// x and y are independent and solved as two SPD systems by preconditioned CG.

#include <optional>
#include <vector>

#include "linalg/cg.hpp"
#include "netlist/design.hpp"

namespace mp::qp {

/// Extra spring pulling one movable node toward a point (spreading anchors,
/// "stay near your grid" forces).
struct Anchor {
  netlist::NodeId node = netlist::kInvalidNode;
  geometry::Point target;
  double weight = 1.0;
};

/// Axis-aligned box constraining a node's center; enforced by projection
/// after the unconstrained solve (adequate for the per-grid decomposition QP
/// where boxes are large relative to movements).
struct BoxBound {
  netlist::NodeId node = netlist::kInvalidNode;
  geometry::Rect box;  ///< allowed region for the node center
};

struct QpOptions {
  /// Nets with more pins than this use a star model instead of a clique.
  int clique_max_degree = 8;
  /// Nets with more pins than this are ignored entirely (global nets).
  int max_net_degree = 512;
  linalg::CgOptions cg;
  /// When true, solutions are clamped so node rectangles stay inside the
  /// placement region.
  bool clamp_to_region = true;
};

struct QpResult {
  linalg::CgResult cg_x;
  linalg::CgResult cg_y;
};

/// Solves the quadratic program and writes the resulting positions into
/// `design` (moving exactly the nodes in `movable`).  Nodes not in `movable`
/// keep their current positions and act as fixed terminals.
/// `anchors`/`bounds` may reference only movable nodes.
QpResult solve_quadratic_placement(netlist::Design& design,
                                   const std::vector<netlist::NodeId>& movable,
                                   const std::vector<Anchor>& anchors = {},
                                   const std::vector<BoxBound>& bounds = {},
                                   const QpOptions& options = {});

}  // namespace mp::qp
