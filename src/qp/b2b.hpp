#pragma once
// Bound-to-Bound (B2B) wirelength refinement [Spindler et al., Kraftwerk2]:
// the clique/star quadratic proxy over-penalizes long nets quadratically;
// B2B reweights each two-pin connection by 1 / distance so the quadratic
// optimum approaches the true HPWL optimum.  Implemented as an outer
// iteration around qp::solve_quadratic_placement-style solves: connect each
// net's boundary pins to every inner pin with weight 1/((p-1)·|Δ|) and
// re-solve until the movement stalls.
//
// Used by gp::GlobalPlaceOptions::b2b_refinement as a final wirelength
// polish and available standalone for library users.

#include "netlist/design.hpp"
#include "qp/quadratic.hpp"

namespace mp::qp {

struct B2bOptions {
  int max_iterations = 6;
  /// Stop when the mean movable-node movement drops below this fraction of
  /// the region diagonal.
  double convergence_fraction = 1e-3;
  /// Distances are clamped below by this fraction of the region diagonal to
  /// keep weights finite for coincident pins.
  double min_distance_fraction = 1e-6;
  /// Nets above this degree are ignored.
  int max_net_degree = 256;
  linalg::CgOptions cg;
};

struct B2bResult {
  int iterations = 0;
  double final_movement = 0.0;  ///< mean movement of the last iteration
  double hpwl = 0.0;
};

/// Runs B2B-refined quadratic placement over `movable`, everything else
/// fixed.  Positions must hold a reasonable starting placement (the B2B
/// weights derive from it).  Anchors are applied at every iteration.
B2bResult solve_b2b_placement(netlist::Design& design,
                              const std::vector<netlist::NodeId>& movable,
                              const std::vector<Anchor>& anchors = {},
                              const B2bOptions& options = {});

}  // namespace mp::qp
