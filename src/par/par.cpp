#include "par/par.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/env.hpp"

namespace mp::par {

namespace {

// 0 = auto (MP_THREADS, else hardware); > 0 = explicit override.
std::atomic<int> g_override{0};
// set_num_threads bumps the generation so the global pool is rebuilt lazily
// with the new size on its next use.
std::atomic<int> g_generation{0};

int resolve_threads() {
  const int override_n = g_override.load(std::memory_order_relaxed);
  if (override_n > 0) return override_n;
  const int env_n = util::env_int("MP_THREADS", 0);
  if (env_n > 0) return env_n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

thread_local bool t_in_worker = false;

// Sub-pool bound to this thread by a ScopedPool (nullptr = global pool).
thread_local ThreadPool* t_bound_pool = nullptr;

// Opaque per-task context; see context_slot() in par.hpp.  Propagated from
// the wave submitter to every worker that drains the wave.
thread_local void* t_context_slot = nullptr;

}  // namespace

int num_threads() { return resolve_threads(); }

int current_threads() {
  return t_bound_pool != nullptr ? t_bound_pool->size() : resolve_threads();
}

void* context_slot() { return t_context_slot; }

void set_context_slot(void* value) { t_context_slot = value; }

ScopedPool::ScopedPool(ThreadPool* pool) : previous_(t_bound_pool) {
  t_bound_pool = pool;
}

ScopedPool::~ScopedPool() { t_bound_pool = previous_; }

void set_num_threads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

bool in_worker() { return t_in_worker; }

// One run() invocation.  The wave owns a copy of the task list and is held
// by shared_ptr: a worker that claims the wave keeps it alive until it
// leaves drain(), so run() may return (and its caller's task vector die)
// while a late worker is still observing an exhausted cursor.
struct ThreadPool::Wave {
  std::vector<std::function<void()>> tasks;
  /// Submitter's context_slot(), applied to every worker for the drain so
  /// thread-local consumers (obs contexts) follow the work across threads.
  void* context = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  /// Taken only to publish the final `done` increment before notifying, so
  /// the submitter's wait cannot miss the last completion.
  std::mutex done_mutex MP_GUARDS("done_cv wait condition");
  std::condition_variable done_cv MP_GUARDED_BY(done_mutex);
  std::mutex error_mutex MP_GUARDS(error);
  std::exception_ptr error MP_GUARDED_BY(error_mutex);

  // Claims and runs tasks until the list is exhausted.
  void drain() {
    const std::size_t total = tasks.size();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        tasks[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : size_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  std::uint64_t last_seq = 0;
  for (;;) {
    std::shared_ptr<Wave> wave;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (wave_ != nullptr && wave_seq_ != last_seq);
      });
      if (stop_) return;
      wave = wave_;
      last_seq = wave_seq_;
    }
    void* const previous_context = t_context_slot;
    t_context_slot = wave->context;
    wave->drain();
    t_context_slot = previous_context;
  }
}

void ThreadPool::run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (size_ <= 1 || t_in_worker) {
    // Serial pool or nested region: run inline, in order.
    for (const auto& task : tasks) task();
    return;
  }
  auto wave = std::make_shared<Wave>();
  wave->tasks = tasks;
  wave->context = t_context_slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    wave_ = wave;
    ++wave_seq_;
  }
  wake_.notify_all();
  // The submitting thread is one of the executors.  It counts as "inside the
  // pool" while it drains, so a nested parallel region encountered in a
  // caller-executed chunk runs inline (same rule as on the worker threads)
  // instead of submitting a second wave that would clobber wave_.
  t_in_worker = true;
  wave->drain();
  t_in_worker = false;
  {
    std::unique_lock<std::mutex> lock(wave->done_mutex);
    wave->done_cv.wait(lock, [&] {
      return wave->done.load(std::memory_order_acquire) == wave->tasks.size();
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    wave_ = nullptr;
  }
  if (wave->error) std::rethrow_exception(wave->error);
}

ThreadPool& global_pool() {
  // Rebuilt when set_num_threads() changed the configuration since the last
  // use.  Guarded by a mutex: first-use races are possible when several
  // threads enter a parallel region simultaneously.
  static std::mutex pool_mutex MP_GUARDS(pool, pool_generation);
  static std::unique_ptr<ThreadPool> pool;
  static int pool_generation = -1;
  std::lock_guard<std::mutex> lock(pool_mutex);
  const int generation = g_generation.load(std::memory_order_relaxed);
  if (!pool || pool_generation != generation ||
      pool->size() != resolve_threads()) {
    pool.reset();  // join old workers before spawning the new set
    pool = std::make_unique<ThreadPool>(resolve_threads());
    pool_generation = generation;
  }
  return *pool;
}

namespace detail {

void run_chunks(std::size_t chunks,
                const std::function<void(std::size_t)>& chunk_body) {
  if (chunks == 0) return;
  // A bound sub-pool (ScopedPool) redirects this thread's regions; its size
  // gates the go-parallel decision so a 1-thread lease runs fully inline.
  ThreadPool* const bound = t_bound_pool;
  const int width = bound != nullptr ? bound->size() : num_threads();
  if (chunks == 1 || t_in_worker || width <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) chunk_body(c);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    tasks.emplace_back([c, &chunk_body] { chunk_body(c); });
  }
  (bound != nullptr ? *bound : global_pool()).run(tasks);
}

}  // namespace detail

}  // namespace mp::par
