#pragma once
// Parallel execution subsystem (docs/PARALLELISM.md).
//
// A lazily-initialized global thread pool plus deterministic parallel-for /
// parallel-reduce primitives.  The design contract, relied on by every
// caller in mcts/, rl/, gp/ and linalg/:
//
//   * The loop range is split into chunks by a caller-supplied grain size
//     only — NEVER by the thread count — and parallel_reduce combines the
//     per-chunk partials in ascending chunk order on the calling thread.
//     Results are therefore bit-identical at any thread count, including 1.
//   * Chunk bodies that only write disjoint outputs (SpMV rows, bin rows,
//     per-slice remaps) are bit-identical to the plain serial loop as well.
//   * Nested parallelism degrades gracefully: a parallel_for issued from
//     inside a pool worker runs inline on that worker (no deadlock, same
//     chunk order).
//
// Thread count: MP_THREADS env var, or set_num_threads() (e.g. from a
// --threads CLI flag); 0/unset means std::thread::hardware_concurrency().
// The pool spawns size-1 workers and the calling thread participates, so
// num_threads() == 1 executes everything inline with zero synchronization.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "check/annotations.hpp"

namespace mp::par {

/// Configured thread count (>= 1).  First call reads MP_THREADS once;
/// 0/unset/unparsable falls back to hardware_concurrency().
int num_threads();

/// Overrides the thread count (0 = back to auto).  Destroys and re-creates
/// the global pool on the next use; must not be called while a parallel
/// region is executing.
void set_num_threads(int n);

/// True while the calling thread is executing a pool task — parallel
/// primitives use this to run nested regions inline.
bool in_worker();

/// Effective parallel width for the calling thread: the size of the pool a
/// ScopedPool bound to it, else num_threads().  Use for performance
/// decisions (grain sizes, go-parallel gates) — never for anything that
/// changes results, which must stay thread-count independent.
int current_threads();

/// Opaque per-task pointer propagated from the thread that submits a wave to
/// every worker executing its chunks (and restored afterwards).  The obs
/// subsystem stores the job-scoped telemetry context here so counters and
/// spans recorded on pool workers land in the submitting job's registry
/// (src/obs/obs.hpp); par itself never dereferences it.
void* context_slot();
void set_context_slot(void* value);

/// Fixed-size pool of cooperating workers.  run() executes a task list to
/// completion; tasks are claimed by an atomic cursor, so any worker may run
/// any task — callers must not depend on the task→thread mapping (the
/// deterministic primitives below never do).
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining executor).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Runs every task and blocks until all complete.  The calling thread
  /// participates.  The first exception thrown by a task is rethrown here
  /// (remaining tasks still run).  Concurrent run() calls serialize.
  void run(const std::vector<std::function<void()>>& tasks);

 private:
  struct Wave;
  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_ MP_GUARDS(wave_, wave_seq_, stop_);
  std::condition_variable wake_ MP_GUARDED_BY(mutex_);
  std::shared_ptr<Wave> wave_ MP_GUARDED_BY(mutex_);  ///< current wave
  std::uint64_t wave_seq_ MP_GUARDED_BY(mutex_) = 0;  ///< bumped per run()
  bool stop_ MP_GUARDED_BY(mutex_) = false;
};

/// The process-wide pool, created on first use with num_threads() threads.
ThreadPool& global_pool();

/// Budgeted sub-pool binding (docs/PARALLELISM.md): while alive, parallel
/// primitives on the *constructing thread* execute on `pool` instead of the
/// global pool, so concurrent top-level tasks (service jobs) can each run on
/// a private pool sized to their thread lease instead of fighting over the
/// global pool's workers.  Chunking stays grain-based, so results are
/// bit-identical whichever pool (of whatever size) executes the chunks.
/// Binding nests (the previous binding is restored on destruction) and is
/// thread-local: only regions issued from this thread are redirected.
/// Passing nullptr temporarily restores the global pool.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
};

namespace detail {

/// Deterministic chunking: number of chunks for a range of `n` items at the
/// given grain (>= 1).  Depends only on (n, grain), never on thread count.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

void run_chunks(std::size_t chunks,
                const std::function<void(std::size_t)>& chunk_body);

}  // namespace detail

/// Applies `body(begin_i, end_i)` over [begin, end) split into grain-sized
/// chunks.  Chunks may run concurrently; the body must only touch disjoint
/// state per chunk (then the result is bit-identical to the serial loop).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (grain == 0) grain = 1;
  const std::size_t chunks = detail::chunk_count(n, grain);
  if (chunks <= 1) {
    if (n > 0) body(begin, end);
    return;
  }
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    body(lo, hi);
  });
}

/// Reduction with deterministic combine order: `body(begin_i, end_i)`
/// produces one partial per chunk; partials are folded left-to-right in
/// chunk order with `combine(acc, partial)` on the calling thread, so the
/// result is independent of the thread count (chunking depends only on the
/// grain, and each chunk is a serial loop).
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, Body&& body, Combine&& combine) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (grain == 0) grain = 1;
  const std::size_t chunks = detail::chunk_count(n, grain);
  if (chunks == 0) return init;
  if (chunks == 1) return combine(std::move(init), body(begin, end));
  std::vector<T> partials(chunks);
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    partials[c] = body(lo, hi);
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace mp::par
