#pragma once
// Layers for the Actor-Critic agent networks (Fig. 2 / Table I of the paper):
// Conv2D (+ bias), BatchNorm2d, ReLU, Linear, and the composite ResBlock
// (Conv-BN-ReLU-Conv-BN + skip + ReLU).  Each layer implements an explicit
// forward/backward pair; parameter gradients accumulate in Parameter::grad
// until an Optimizer consumes them, which matches the paper's "update θ
// every 30 episodes" training scheme.
//
// Activations are single samples: [C, H, W] for the 2-D layers, flat vectors
// for Linear.  With batch size 1, BatchNorm normalizes over the spatial
// extent per channel (and keeps running statistics for inference mode).

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace mp::nn {

struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(std::vector<int> shape)
      : value(shape), grad(std::move(shape)) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; `train` selects batch statistics (BN) and caches the
  /// intermediates backward needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backward pass for the most recent forward; returns grad wrt input and
  /// accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only batched forward: `input` stacks `batch` samples along a
  /// leading dimension ([B, C, H, W] / [B, F]) and the result stacks the
  /// per-sample outputs the same way.  Contract: sample b of the result is
  /// bit-identical to `forward(sample_b, /*train=*/false)` for every layer
  /// (see docs/INFERENCE.md), which is what lets the inference engine
  /// coalesce requests from unrelated jobs without changing any result.
  /// The default implementation slices and loops; layers with a real batch
  /// kernel (Conv2d: one im2col + one GEMM for the whole batch) override
  /// it.  Never caches backward state — calling backward() after
  /// forward_batched() is undefined.
  virtual Tensor forward_batched(const Tensor& input, int batch);

  /// Appends the layer's parameters (for the optimizer).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }
};

/// 2-D convolution with square kernel, stride 1 and "same" zero padding.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }

  /// True while the im2col buffer of the last training forward is retained
  /// (backward needs it; inference forwards must not hold onto it).
  bool holds_col_cache() const { return !col_cache_.empty(); }

 private:
  int in_c_, out_c_, k_;
  Parameter weight_;  ///< [outC, inC * k * k]
  Parameter bias_;    ///< [outC]
  Tensor col_cache_;  ///< im2col of the last input, train forwards only
  int last_h_ = 0, last_w_ = 0;
};

/// Per-channel batch normalization over the spatial extent (sample size 1).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  int channels_;
  float momentum_, eps_;
  Parameter gamma_, beta_;
  /// Running statistics are Parameters with always-zero gradients so that
  /// snapshot/save/load round-trips capture them (optimizers never move
  /// zero-gradient parameters); forward(train=true) updates them directly.
  Parameter running_mean_, running_var_;
  // Caches for backward.
  Tensor x_hat_;
  std::vector<float> inv_std_;
  int spatial_ = 0;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;

 private:
  std::vector<bool> mask_;
};

/// Fully connected layer on flat vectors.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }

 private:
  int in_f_, out_f_;
  Parameter weight_;  ///< [out, in]
  Parameter bias_;    ///< [out]
  Tensor input_cache_;
};

/// Residual block: Conv3x3-BN-ReLU-Conv3x3-BN, + skip, ReLU (Table I "Main").
class ResBlock : public Layer {
 public:
  ResBlock(int channels, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Conv2d conv1_, conv2_;
  BatchNorm2d bn1_, bn2_;
  ReLU relu1_, relu_out_;
};

/// Runs layers in order.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  std::size_t size() const { return layers_.size(); }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor forward_batched(const Tensor& input, int batch) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace mp::nn
