#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace mp::nn {

namespace {
std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t total = 1;
  for (int d : shape) {
    assert(d > 0);
    total *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : total;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<int> shape) {
  assert(shape_size(shape) == data_.size());
  shape_ = std::move(shape);
}

void Tensor::init_he(util::Rng& rng, int fan_in) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(std::max(1, fan_in)));
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::init_uniform(util::Rng& rng, float bound) {
  for (float& v : data_) v = static_cast<float>(rng.uniform(-bound, bound));
}

void Tensor::add(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale(float s) {
  for (float& v : data_) v *= s;
}

}  // namespace mp::nn
