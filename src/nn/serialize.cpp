#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mp::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d504e4e;  // "MPNN"
}

std::vector<Tensor> snapshot_parameters(const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<Tensor>& snapshot) {
  if (params.size() != snapshot.size()) {
    throw std::runtime_error("parameter snapshot count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.size() != snapshot[i].size()) {
      throw std::runtime_error("parameter snapshot shape mismatch");
    }
    params[i]->value = snapshot[i];
  }
}

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    const std::uint32_t rank = static_cast<std::uint32_t>(p->value.rank());
    f.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d = 0; d < p->value.rank(); ++d) {
      const std::int32_t dim = p->value.dim(d);
      f.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!f) throw std::runtime_error("write failed: " + path);
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::uint32_t magic = 0, count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (magic != kMagic) throw std::runtime_error("bad magic in " + path);
  if (count != params.size()) {
    throw std::runtime_error("parameter count mismatch in " + path);
  }
  for (Parameter* p : params) {
    std::uint32_t rank = 0;
    f.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (rank != static_cast<std::uint32_t>(p->value.rank())) {
      throw std::runtime_error("parameter rank mismatch in " + path);
    }
    std::size_t total = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      std::int32_t dim = 0;
      f.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (dim != p->value.dim(static_cast<int>(d))) {
        throw std::runtime_error("parameter shape mismatch in " + path);
      }
      total *= static_cast<std::size_t>(dim);
    }
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(total * sizeof(float)));
  }
  if (!f) throw std::runtime_error("read failed: " + path);
}

}  // namespace mp::nn
