#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mp::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4d504e4e;  // "MPNN"
// Plausibility bounds: a corrupt header must fail fast with a clear message
// instead of driving a multi-gigabyte allocation or a sign-flipped loop.
constexpr std::uint32_t kMaxTensors = 1u << 20;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int32_t kMaxDim = 1 << 28;

template <typename T>
void read_pod(std::ifstream& f, T& out, const std::string& path,
              const char* what) {
  f.read(reinterpret_cast<char*>(&out), sizeof(T));
  if (!f) {
    throw std::runtime_error(std::string("truncated parameter file (") + what +
                             "): " + path);
  }
}

std::string shape_string(const std::vector<int>& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

}  // namespace

std::vector<Tensor> snapshot_parameters(const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<Tensor>& snapshot) {
  if (params.size() != snapshot.size()) {
    throw std::runtime_error("parameter snapshot count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.size() != snapshot[i].size()) {
      throw std::runtime_error("parameter snapshot shape mismatch");
    }
    params[i]->value = snapshot[i];
  }
}

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    const std::uint32_t rank = static_cast<std::uint32_t>(p->value.rank());
    f.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d = 0; d < p->value.rank(); ++d) {
      const std::int32_t dim = p->value.dim(d);
      f.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<Tensor> read_parameters_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::uint32_t magic = 0, count = 0;
  read_pod(f, magic, path, "magic");
  if (magic != kMagic) {
    throw std::runtime_error("bad magic in " + path +
                             " (not an nn parameter file)");
  }
  read_pod(f, count, path, "tensor count");
  if (count > kMaxTensors) {
    throw std::runtime_error("implausible tensor count " +
                             std::to_string(count) + " in " + path);
  }
  std::vector<Tensor> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string where = "tensor " + std::to_string(i);
    std::uint32_t rank = 0;
    read_pod(f, rank, path, (where + " rank").c_str());
    if (rank > kMaxRank) {
      throw std::runtime_error("implausible rank " + std::to_string(rank) +
                               " for " + where + " in " + path);
    }
    std::vector<int> shape;
    shape.reserve(rank);
    std::size_t total = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      std::int32_t dim = 0;
      read_pod(f, dim, path, (where + " shape").c_str());
      if (dim <= 0 || dim > kMaxDim) {
        throw std::runtime_error("implausible dimension " +
                                 std::to_string(dim) + " for " + where +
                                 " in " + path);
      }
      shape.push_back(dim);
      total *= static_cast<std::size_t>(dim);
    }
    Tensor t(shape);
    f.read(reinterpret_cast<char*>(t.data()),
           static_cast<std::streamsize>(total * sizeof(float)));
    if (!f) {
      throw std::runtime_error("truncated parameter file (" + where +
                               " data): " + path);
    }
    out.push_back(std::move(t));
  }
  // The container is length-delimited; bytes past the last tensor mean the
  // file was written by something else (or doubly appended) — refuse it.
  f.peek();
  if (!f.eof()) {
    throw std::runtime_error("trailing bytes after last tensor in " + path);
  }
  return out;
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  const std::vector<Tensor> loaded = read_parameters_file(path);
  if (loaded.size() != params.size()) {
    throw std::runtime_error(
        "parameter count mismatch in " + path + ": network has " +
        std::to_string(params.size()) + ", file has " +
        std::to_string(loaded.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (loaded[i].shape() != params[i]->value.shape()) {
      throw std::runtime_error(
          "parameter " + std::to_string(i) + " shape mismatch in " + path +
          ": network expects " + shape_string(params[i]->value.shape()) +
          ", file has " + shape_string(loaded[i].shape()));
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = loaded[i];
  }
}

}  // namespace mp::nn
