#include "nn/kernels.hpp"

#include <algorithm>
#include <cstring>

// This translation unit is compiled with -ffp-contract=off (see
// src/nn/CMakeLists.txt): a contracted fma(a, b, acc) rounds once where
// mul-then-add rounds twice, so allowing the compiler to contract some loop
// bodies but not others (vector body vs scalar tail, naive vs blocked)
// would silently break the bit-identity contract documented in kernels.hpp.
// The forward kernel's fused path below is the one deliberate exception:
// it applies FMA *explicitly and uniformly* (every k-term of every element,
// vector body and scalar tail alike), which keeps the partition-invariance
// contract while halving the rounding steps — see kernels.hpp.

#if defined(__FMA__) && defined(__AVX2__)
#define MP_NN_HAVE_FMA 1
#include <immintrin.h>
#endif

namespace mp::nn {

// ----------------------------------------------------------- references ---

void gemm_acc_naive(const float* a, const float* b, float* out, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* orow = out + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_at_acc_naive(const float* a, const float* b, float* out, int m,
                       int k, int n) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_bt_acc_naive(const float* a, const float* b, float* out, int m,
                       int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* orow = out + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] += sum;
    }
  }
}

// -------------------------------------------------------------- blocked ---

#if defined(__GNUC__) || defined(__clang__)
#define MP_NN_HAVE_VEC 1

// Without AVX enabled (e.g. sanitizer builds, which drop -march=native) a
// 32-byte vector parameter is passed through memory, and gcc notes that
// this ABI differs from an AVX build (-Wpsabi).  Every v8f function here is
// internal to this translation unit (anonymous namespace, inlined), so no
// ABI boundary is ever crossed — the note does not apply.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace {

typedef float v8f __attribute__((vector_size(32)));

inline v8f v8_load(const float* p) {
  v8f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void v8_store(float* p, v8f v) { std::memcpy(p, &v, sizeof(v)); }

inline v8f v8_splat(float x) { return v8f{x, x, x, x, x, x, x, x}; }

// The register-blocked micro tile: 4 A-rows x 16 output columns.  Eight
// 8-lane accumulators stay in registers across the whole K sweep, so the
// inner loop does 2 B loads + 4 A loads for 8 vector mul-adds, where the
// naive ikj nest re-loads and re-stores the output row for every k.
// The forward kernel widens this to 6 x 16 (12 accumulators + 2 B vectors
// + 1 splat = 15 of 16 ymm): with two FMA ports at 4-5 cycle latency, 8
// accumulators re-use each register every ~4 cycles and stall; 12 give the
// scheduler ~6 cycles of slack per register and keep both ports fed.
constexpr int kMr = 4;
constexpr int kMrFwd = 6;
constexpr int kNr = 16;

// acc + a*b for the *forward* kernel (gemm_acc) only.  With FMA hardware
// available the term is fused — one rounding instead of two — applied to
// every k-term of every output element, so any partition of the work
// (batched vs single-sample, vector body vs scalar tail) still computes
// identical bits.  The backward kernels keep the plain two-rounding form.
inline v8f v8_muladd(v8f acc, v8f s, v8f b) {
#ifdef MP_NN_HAVE_FMA
  return _mm256_fmadd_ps(s, b, acc);
#else
  return acc + s * b;
#endif
}

inline float s_muladd(float acc, float a, float b) {
#ifdef MP_NN_HAVE_FMA
  return __builtin_fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

// The naive kernel skips a[i][k] == 0 terms, and the no-FMA forward kernel
// copies that to stay bit-identical to it.  The FMA forward kernel already
// rounds differently from naive, so it drops the skip instead — uniformly,
// for every element and every k, which keeps partition invariance — because
// six compare-and-branch pairs per k-step make the micro kernel front-end
// bound, and in the forward GEMM the A operand is the weight matrix (the
// im2col padding zeros sit in B), so the skip almost never fires anyway.
#ifdef MP_NN_HAVE_FMA
constexpr bool kFwdSkipZeros = false;
#else
constexpr bool kFwdSkipZeros = true;
#endif

}  // namespace
#endif  // vector extensions

void gemm_acc(const float* a, const float* b, float* out, int m, int k,
              int n) {
#ifdef MP_NN_HAVE_VEC
  const int n_vec = n - n % kNr;
  for (int j0 = 0; j0 < n_vec; j0 += kNr) {
    int i0 = 0;
    for (; i0 + kMrFwd <= m; i0 += kMrFwd) {
      const float* a0 = a + static_cast<std::size_t>(i0 + 0) * k;
      const float* a1 = a + static_cast<std::size_t>(i0 + 1) * k;
      const float* a2 = a + static_cast<std::size_t>(i0 + 2) * k;
      const float* a3 = a + static_cast<std::size_t>(i0 + 3) * k;
      const float* a4 = a + static_cast<std::size_t>(i0 + 4) * k;
      const float* a5 = a + static_cast<std::size_t>(i0 + 5) * k;
      float* o0 = out + static_cast<std::size_t>(i0 + 0) * n + j0;
      float* o1 = out + static_cast<std::size_t>(i0 + 1) * n + j0;
      float* o2 = out + static_cast<std::size_t>(i0 + 2) * n + j0;
      float* o3 = out + static_cast<std::size_t>(i0 + 3) * n + j0;
      float* o4 = out + static_cast<std::size_t>(i0 + 4) * n + j0;
      float* o5 = out + static_cast<std::size_t>(i0 + 5) * n + j0;
      v8f c00 = v8_load(o0), c01 = v8_load(o0 + 8);
      v8f c10 = v8_load(o1), c11 = v8_load(o1 + 8);
      v8f c20 = v8_load(o2), c21 = v8_load(o2 + 8);
      v8f c30 = v8_load(o3), c31 = v8_load(o3 + 8);
      v8f c40 = v8_load(o4), c41 = v8_load(o4 + 8);
      v8f c50 = v8_load(o5), c51 = v8_load(o5 + 8);
      for (int kk = 0; kk < k; ++kk) {
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const v8f b0 = v8_load(brow);
        const v8f b1 = v8_load(brow + 8);
        float av;
        // Per-(row, k) zero skip on no-FMA builds, exactly as in the naive
        // kernel: the skip decides whether this k contributes to the row at
        // all, so keeping it keeps the FP op sequence of every output
        // element unchanged.  FMA builds drop it (see kFwdSkipZeros).
        av = a0[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c00 = v8_muladd(c00, s, b0);
          c01 = v8_muladd(c01, s, b1);
        }
        av = a1[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c10 = v8_muladd(c10, s, b0);
          c11 = v8_muladd(c11, s, b1);
        }
        av = a2[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c20 = v8_muladd(c20, s, b0);
          c21 = v8_muladd(c21, s, b1);
        }
        av = a3[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c30 = v8_muladd(c30, s, b0);
          c31 = v8_muladd(c31, s, b1);
        }
        av = a4[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c40 = v8_muladd(c40, s, b0);
          c41 = v8_muladd(c41, s, b1);
        }
        av = a5[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c50 = v8_muladd(c50, s, b0);
          c51 = v8_muladd(c51, s, b1);
        }
      }
      v8_store(o0, c00), v8_store(o0 + 8, c01);
      v8_store(o1, c10), v8_store(o1 + 8, c11);
      v8_store(o2, c20), v8_store(o2 + 8, c21);
      v8_store(o3, c30), v8_store(o3 + 8, c31);
      v8_store(o4, c40), v8_store(o4 + 8, c41);
      v8_store(o5, c50), v8_store(o5 + 8, c51);
    }
    for (; i0 + 2 <= m; i0 += 2) {  // 2-row tail: four accumulator chains.
      const float* a0 = a + static_cast<std::size_t>(i0 + 0) * k;
      const float* a1 = a + static_cast<std::size_t>(i0 + 1) * k;
      float* o0 = out + static_cast<std::size_t>(i0 + 0) * n + j0;
      float* o1 = out + static_cast<std::size_t>(i0 + 1) * n + j0;
      v8f c00 = v8_load(o0), c01 = v8_load(o0 + 8);
      v8f c10 = v8_load(o1), c11 = v8_load(o1 + 8);
      for (int kk = 0; kk < k; ++kk) {
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const v8f b0 = v8_load(brow);
        const v8f b1 = v8_load(brow + 8);
        float av;
        av = a0[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c00 = v8_muladd(c00, s, b0);
          c01 = v8_muladd(c01, s, b1);
        }
        av = a1[kk];
        if (!kFwdSkipZeros || av != 0.0f) {
          const v8f s = v8_splat(av);
          c10 = v8_muladd(c10, s, b0);
          c11 = v8_muladd(c11, s, b1);
        }
      }
      v8_store(o0, c00), v8_store(o0 + 8, c01);
      v8_store(o1, c10), v8_store(o1 + 8, c11);
    }
    for (; i0 < m; ++i0) {  // A-row tail: single-row micro kernel.
      const float* arow = a + static_cast<std::size_t>(i0) * k;
      float* orow = out + static_cast<std::size_t>(i0) * n + j0;
      v8f c0 = v8_load(orow), c1 = v8_load(orow + 8);
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (kFwdSkipZeros && av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const v8f s = v8_splat(av);
        c0 = v8_muladd(c0, s, v8_load(brow));
        c1 = v8_muladd(c1, s, v8_load(brow + 8));
      }
      v8_store(orow, c0), v8_store(orow + 8, c1);
    }
  }
  if (n_vec < n) {  // column tail: the naive nest over the last n % 16 cols.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (kFwdSkipZeros && av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n;
        for (int j = n_vec; j < n; ++j) {
          orow[j] = s_muladd(orow[j], av, brow[j]);
        }
      }
    }
  }
#else
  gemm_acc_naive(a, b, out, m, k, n);
#endif
}

void gemm_at_acc(const float* a, const float* b, float* out, int m, int k,
                 int n) {
#ifdef MP_NN_HAVE_VEC
  const int n_vec = n - n % kNr;
  for (int j0 = 0; j0 < n_vec; j0 += kNr) {
    int i0 = 0;
    for (; i0 + kMr <= m; i0 += kMr) {
      float* o0 = out + static_cast<std::size_t>(i0 + 0) * n + j0;
      float* o1 = out + static_cast<std::size_t>(i0 + 1) * n + j0;
      float* o2 = out + static_cast<std::size_t>(i0 + 2) * n + j0;
      float* o3 = out + static_cast<std::size_t>(i0 + 3) * n + j0;
      v8f c00 = v8_load(o0), c01 = v8_load(o0 + 8);
      v8f c10 = v8_load(o1), c11 = v8_load(o1 + 8);
      v8f c20 = v8_load(o2), c21 = v8_load(o2 + 8);
      v8f c30 = v8_load(o3), c31 = v8_load(o3 + 8);
      for (int kk = 0; kk < k; ++kk) {
        const float* acol = a + static_cast<std::size_t>(kk) * m + i0;
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const v8f b0 = v8_load(brow);
        const v8f b1 = v8_load(brow + 8);
        float av;
        av = acol[0];
        if (av != 0.0f) {
          const v8f s = v8_splat(av);
          c00 += s * b0;
          c01 += s * b1;
        }
        av = acol[1];
        if (av != 0.0f) {
          const v8f s = v8_splat(av);
          c10 += s * b0;
          c11 += s * b1;
        }
        av = acol[2];
        if (av != 0.0f) {
          const v8f s = v8_splat(av);
          c20 += s * b0;
          c21 += s * b1;
        }
        av = acol[3];
        if (av != 0.0f) {
          const v8f s = v8_splat(av);
          c30 += s * b0;
          c31 += s * b1;
        }
      }
      v8_store(o0, c00), v8_store(o0 + 8, c01);
      v8_store(o1, c10), v8_store(o1 + 8, c11);
      v8_store(o2, c20), v8_store(o2 + 8, c21);
      v8_store(o3, c30), v8_store(o3 + 8, c31);
    }
    for (; i0 < m; ++i0) {
      float* orow = out + static_cast<std::size_t>(i0) * n + j0;
      v8f c0 = v8_load(orow), c1 = v8_load(orow + 8);
      for (int kk = 0; kk < k; ++kk) {
        const float av = a[static_cast<std::size_t>(kk) * m + i0];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const v8f s = v8_splat(av);
        c0 += s * v8_load(brow);
        c1 += s * v8_load(brow + 8);
      }
      v8_store(orow, c0), v8_store(orow + 8, c1);
    }
  }
  if (n_vec < n) {
    for (int kk = 0; kk < k; ++kk) {
      const float* arow = a + static_cast<std::size_t>(kk) * m;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out + static_cast<std::size_t>(i) * n;
        for (int j = n_vec; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
#else
  gemm_at_acc_naive(a, b, out, m, k, n);
#endif
}

void gemm_bt_acc(const float* a, const float* b, float* out, int m, int k,
                 int n) {
  // Dot-product shaped: vector lanes over k would need a horizontal
  // reduction and change the summation order, so this one blocks over A
  // rows instead — four independent scalar accumulator chains hide the
  // add latency the naive single-chain dot product is bound by, and each
  // chain still sums its k terms in ascending order.
  int i0 = 0;
  for (; i0 + 4 <= m; i0 += 4) {
    const float* a0 = a + static_cast<std::size_t>(i0 + 0) * k;
    const float* a1 = a + static_cast<std::size_t>(i0 + 1) * k;
    const float* a2 = a + static_cast<std::size_t>(i0 + 2) * k;
    const float* a3 = a + static_cast<std::size_t>(i0 + 3) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        const float bv = brow[kk];
        s0 += a0[kk] * bv;
        s1 += a1[kk] * bv;
        s2 += a2[kk] * bv;
        s3 += a3[kk] * bv;
      }
      out[static_cast<std::size_t>(i0 + 0) * n + j] += s0;
      out[static_cast<std::size_t>(i0 + 1) * n + j] += s1;
      out[static_cast<std::size_t>(i0 + 2) * n + j] += s2;
      out[static_cast<std::size_t>(i0 + 3) * n + j] += s3;
    }
  }
  for (; i0 < m; ++i0) {
    const float* arow = a + static_cast<std::size_t>(i0) * k;
    float* orow = out + static_cast<std::size_t>(i0) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] += sum;
    }
  }
}

// --------------------------------------------------------------- im2col ---

void im2col(const float* input, int in_c, int h, int w, int k, float* col,
            std::size_t col_ld) {
  const int pad = k / 2;
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  for (int c = 0; c < in_c; ++c) {
    const float* plane = input + static_cast<std::size_t>(c) * hw;
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx) {
        const int row = (c * k + ky) * k + kx;
        float* dst = col + static_cast<std::size_t>(row) * col_ld;
        for (int y = 0; y < h; ++y) {
          const int sy = y + ky - pad;
          float* drow = dst + static_cast<std::size_t>(y) * w;
          if (sy < 0 || sy >= h) {
            std::memset(drow, 0, sizeof(float) * static_cast<std::size_t>(w));
            continue;
          }
          const float* srow = plane + static_cast<std::size_t>(sy) * w;
          // dst[x] = src[x + kx - pad] where in range, else 0: zero the pad
          // fringes and memcpy the interior span.
          const int shift = kx - pad;
          const int x_lo = std::min(w, std::max(0, -shift));
          const int x_hi = std::max(x_lo, std::min(w, w - shift));
          for (int x = 0; x < x_lo; ++x) drow[x] = 0.0f;
          if (x_hi > x_lo) {
            std::memcpy(drow + x_lo, srow + x_lo + shift,
                        sizeof(float) * static_cast<std::size_t>(x_hi - x_lo));
          }
          for (int x = x_hi; x < w; ++x) drow[x] = 0.0f;
        }
      }
    }
  }
}

}  // namespace mp::nn
