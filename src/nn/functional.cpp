#include "nn/functional.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mp::nn {

Tensor softmax(const Tensor& logits) {
  Tensor out = logits;
  float max_logit = -1e30f;
  for (std::size_t i = 0; i < out.size(); ++i) max_logit = std::max(max_logit, out[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i] - max_logit);
    sum += out[i];
  }
  const float inv = 1.0f / std::max(sum, 1e-30f);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= inv;
  return out;
}

Tensor masked_softmax(const Tensor& logits, const std::vector<double>& mask) {
  assert(mask.size() == logits.size());
  bool any = false;
  for (double m : mask) {
    if (m > 0.0) {
      any = true;
      break;
    }
  }
  if (!any) return softmax(logits);

  Tensor out = logits;
  float max_logit = -1e30f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask[i] > 0.0) max_logit = std::max(max_logit, out[i]);
  }
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask[i] > 0.0) {
      out[i] = std::exp(out[i] - max_logit) * static_cast<float>(mask[i]);
      sum += out[i];
    } else {
      out[i] = 0.0f;
    }
  }
  const float inv = 1.0f / std::max(sum, 1e-30f);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= inv;
  return out;
}

Tensor policy_gradient(const Tensor& probs, int action, float advantage) {
  Tensor grad = probs;
  grad.scale(advantage);
  grad[static_cast<std::size_t>(action)] -= advantage;
  return grad;
}

}  // namespace mp::nn
