#pragma once
// Parameter snapshot / save / load.  Snapshots back the Fig. 5 experiment
// (MCTS guided by checkpoints of a partially trained agent); file
// (de)serialization lets users persist pre-trained agents.

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace mp::nn {

/// In-memory copy of parameter values (not gradients).
std::vector<Tensor> snapshot_parameters(const std::vector<Parameter*>& params);

/// Restores a snapshot; shapes must match element-for-element.
void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<Tensor>& snapshot);

/// Binary format: magic, count, then per tensor rank/shape/data.
/// Throws std::runtime_error on I/O or shape mismatch.
void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);
void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

/// Reads a save_parameters file into free-standing tensors, validating the
/// container itself (magic, plausible counts/ranks/dims, exact length — a
/// truncated or trailing-garbage file throws with the failing field named)
/// without needing a network of matching architecture.  Used by the service
/// weights cache (src/svc/cache.cpp); load_parameters builds on it.
std::vector<Tensor> read_parameters_file(const std::string& path);

}  // namespace mp::nn
