#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mp::nn {

namespace {

// out[M x N] += A[M x K] * B[K x N], row-major, ikj loop order for locality.
void matmul_acc(const float* a, const float* b, float* out, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* orow = out + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// out[M x N] += A^T[M x K] * B[K x N] where A is stored [K x M].
void matmul_at_acc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// out[M x N] += A[M x K] * B^T[K x N] where B is stored [N x K].
void matmul_bt_acc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* orow = out + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] += sum;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}) {
  weight_.value.init_he(rng, in_channels * kernel * kernel);
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  (void)train;
  const int h = input.dim(1);
  const int w = input.dim(2);
  last_h_ = h;
  last_w_ = w;
  const int pad = k_ / 2;
  const int patch = in_c_ * k_ * k_;

  // im2col: col[patch, h*w].
  col_cache_ = Tensor({patch, h * w});
  float* col = col_cache_.data();
  for (int c = 0; c < in_c_; ++c) {
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx) {
        const int row = (c * k_ + ky) * k_ + kx;
        float* dst = col + static_cast<std::size_t>(row) * h * w;
        for (int y = 0; y < h; ++y) {
          const int sy = y + ky - pad;
          if (sy < 0 || sy >= h) {
            std::memset(dst + static_cast<std::size_t>(y) * w, 0,
                        sizeof(float) * static_cast<std::size_t>(w));
            continue;
          }
          for (int x = 0; x < w; ++x) {
            const int sx = x + kx - pad;
            dst[static_cast<std::size_t>(y) * w + x] =
                (sx >= 0 && sx < w) ? input.at(c, sy, sx) : 0.0f;
          }
        }
      }
    }
  }

  Tensor output({out_c_, h, w});
  // output[outC, h*w] = weight[outC, patch] * col[patch, h*w]
  matmul_acc(weight_.value.data(), col, output.data(), out_c_, patch, h * w);
  for (int oc = 0; oc < out_c_; ++oc) {
    const float b = bias_.value[static_cast<std::size_t>(oc)];
    float* plane = output.data() + static_cast<std::size_t>(oc) * h * w;
    for (int i = 0; i < h * w; ++i) plane[i] += b;
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const int h = last_h_;
  const int w = last_w_;
  const int pad = k_ / 2;
  const int patch = in_c_ * k_ * k_;

  // grad_weight += grad_out[outC, h*w] * col^T[h*w, patch]
  matmul_bt_acc(grad_output.data(), col_cache_.data(), weight_.grad.data(),
                out_c_, h * w, patch);
  // grad_bias
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* plane = grad_output.data() + static_cast<std::size_t>(oc) * h * w;
    float sum = 0.0f;
    for (int i = 0; i < h * w; ++i) sum += plane[i];
    bias_.grad[static_cast<std::size_t>(oc)] += sum;
  }
  // grad_col[patch, h*w] = weight^T[patch, outC] * grad_out[outC, h*w]
  Tensor grad_col({patch, h * w});
  matmul_at_acc(weight_.value.data(), grad_output.data(), grad_col.data(),
                patch, out_c_, h * w);
  // col2im.
  Tensor grad_input({in_c_, h, w});
  const float* gc = grad_col.data();
  for (int c = 0; c < in_c_; ++c) {
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx) {
        const int row = (c * k_ + ky) * k_ + kx;
        const float* src = gc + static_cast<std::size_t>(row) * h * w;
        for (int y = 0; y < h; ++y) {
          const int sy = y + ky - pad;
          if (sy < 0 || sy >= h) continue;
          for (int x = 0; x < w; ++x) {
            const int sx = x + kx - pad;
            if (sx < 0 || sx >= w) continue;
            grad_input.at(c, sy, sx) += src[static_cast<std::size_t>(y) * w + x];
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ------------------------------------------------------------ BatchNorm2d ---

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  running_mean_.value.zero();
  running_var_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  const int h = input.dim(1);
  const int w = input.dim(2);
  spatial_ = h * w;
  Tensor output({channels_, h, w});
  x_hat_ = Tensor({channels_, h, w});
  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);

  for (int c = 0; c < channels_; ++c) {
    const float* in = input.data() + static_cast<std::size_t>(c) * spatial_;
    float mean, var;
    if (train) {
      float sum = 0.0f;
      for (int i = 0; i < spatial_; ++i) sum += in[i];
      mean = sum / static_cast<float>(spatial_);
      float sq = 0.0f;
      for (int i = 0; i < spatial_; ++i) {
        const float d = in[i] - mean;
        sq += d * d;
      }
      var = sq / static_cast<float>(spatial_);
      running_mean_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_.value[static_cast<std::size_t>(c)] +
          momentum_ * mean;
      running_var_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_.value[static_cast<std::size_t>(c)] +
          momentum_ * var;
    } else {
      mean = running_mean_.value[static_cast<std::size_t>(c)];
      var = running_var_.value[static_cast<std::size_t>(c)];
    }
    const float inv = 1.0f / std::sqrt(var + eps_);
    inv_std_[static_cast<std::size_t>(c)] = inv;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    float* xh = x_hat_.data() + static_cast<std::size_t>(c) * spatial_;
    float* out = output.data() + static_cast<std::size_t>(c) * spatial_;
    for (int i = 0; i < spatial_; ++i) {
      xh[i] = (in[i] - mean) * inv;
      out[i] = g * xh[i] + b;
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  Tensor grad_input({channels_, grad_output.dim(1), grad_output.dim(2)});
  const float n = static_cast<float>(spatial_);
  for (int c = 0; c < channels_; ++c) {
    const float* go = grad_output.data() + static_cast<std::size_t>(c) * spatial_;
    const float* xh = x_hat_.data() + static_cast<std::size_t>(c) * spatial_;
    float* gi = grad_input.data() + static_cast<std::size_t>(c) * spatial_;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv = inv_std_[static_cast<std::size_t>(c)];

    float sum_go = 0.0f, sum_go_xh = 0.0f;
    for (int i = 0; i < spatial_; ++i) {
      sum_go += go[i];
      sum_go_xh += go[i] * xh[i];
    }
    gamma_.grad[static_cast<std::size_t>(c)] += sum_go_xh;
    beta_.grad[static_cast<std::size_t>(c)] += sum_go;

    // Standard BN backward over the normalization axis.
    const float k1 = g * inv / n;
    for (int i = 0; i < spatial_; ++i) {
      gi[i] = k1 * (n * go[i] - sum_go - xh[i] * sum_go_xh);
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

// ------------------------------------------------------------------ ReLU ---

Tensor ReLU::forward(const Tensor& input, bool train) {
  (void)train;
  Tensor output = input;
  mask_.assign(input.size(), false);
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] > 0.0f) {
      mask_[i] = true;
    } else {
      output[i] = 0.0f;
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (!mask_[i]) grad_input[i] = 0.0f;
  }
  return grad_input;
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : in_f_(in_features),
      out_f_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  weight_.value.init_he(rng, in_features);
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& input, bool train) {
  (void)train;
  input_cache_ = input;
  Tensor output({out_f_});
  const float* w = weight_.value.data();
  const float* x = input.data();
  for (int o = 0; o < out_f_; ++o) {
    const float* row = w + static_cast<std::size_t>(o) * in_f_;
    float sum = bias_.value[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_f_; ++i) sum += row[i] * x[i];
    output[static_cast<std::size_t>(o)] = sum;
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const float* go = grad_output.data();
  const float* x = input_cache_.data();
  float* gw = weight_.grad.data();
  for (int o = 0; o < out_f_; ++o) {
    const float g = go[o];
    bias_.grad[static_cast<std::size_t>(o)] += g;
    if (g == 0.0f) continue;
    float* row = gw + static_cast<std::size_t>(o) * in_f_;
    for (int i = 0; i < in_f_; ++i) row[i] += g * x[i];
  }
  Tensor grad_input({in_f_});
  const float* w = weight_.value.data();
  for (int o = 0; o < out_f_; ++o) {
    const float g = go[o];
    if (g == 0.0f) continue;
    const float* row = w + static_cast<std::size_t>(o) * in_f_;
    for (int i = 0; i < in_f_; ++i) grad_input[static_cast<std::size_t>(i)] += g * row[i];
  }
  return grad_input;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// -------------------------------------------------------------- ResBlock ---

ResBlock::ResBlock(int channels, util::Rng& rng)
    : conv1_(channels, channels, 3, rng),
      conv2_(channels, channels, 3, rng),
      bn1_(channels),
      bn2_(channels) {}

Tensor ResBlock::forward(const Tensor& input, bool train) {
  Tensor h = conv1_.forward(input, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  h.add(input);  // skip connection
  return relu_out_.forward(h, train);
}

Tensor ResBlock::backward(const Tensor& grad_output) {
  Tensor g = relu_out_.backward(grad_output);
  const Tensor skip_grad = g;  // gradient flowing through the identity path
  g = bn2_.backward(g);
  g = conv2_.backward(g);
  g = relu1_.backward(g);
  g = bn1_.backward(g);
  g = conv1_.backward(g);
  g.add(skip_grad);
  return g;
}

void ResBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  bn2_.collect_parameters(out);
}

// ------------------------------------------------------------ Sequential ---

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& layer : layers_) layer->collect_parameters(out);
}

}  // namespace mp::nn
