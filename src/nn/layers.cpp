#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/kernels.hpp"

// Like kernels.cpp, this file is compiled with -ffp-contract=off (see
// CMakeLists.txt): the single-sample and batched loop bodies below must
// round identically for the forward_batched() bit-identity contract, which
// contraction applied to one loop but not the other would break.

namespace mp::nn {

// ----------------------------------------------------------------- Layer ---

Tensor Layer::forward_batched(const Tensor& input, int batch) {
  // Fallback: slice the leading batch dimension and run each sample through
  // the single-sample inference forward.  Bit-identity per sample holds
  // trivially; layers with a real batch kernel override this.
  const std::size_t sample_size = input.size() / static_cast<std::size_t>(batch);
  Tensor sample(std::vector<int>(input.shape().begin() + 1, input.shape().end()));
  Tensor output;
  std::size_t out_sample = 0;
  for (int bi = 0; bi < batch; ++bi) {
    std::memcpy(sample.data(), input.data() + bi * sample_size,
                sizeof(float) * sample_size);
    Tensor y = forward(sample, /*train=*/false);
    if (bi == 0) {
      std::vector<int> out_shape;
      out_shape.push_back(batch);
      out_shape.insert(out_shape.end(), y.shape().begin(), y.shape().end());
      output = Tensor(out_shape);
      out_sample = y.size();
    }
    std::memcpy(output.data() + bi * out_sample, y.data(),
                sizeof(float) * out_sample);
  }
  return output;
}

// ---------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}) {
  weight_.value.init_he(rng, in_channels * kernel * kernel);
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  const int h = input.dim(1);
  const int w = input.dim(2);
  last_h_ = h;
  last_w_ = w;
  const int patch = in_c_ * k_ * k_;
  const std::size_t hw = static_cast<std::size_t>(h) * w;

  // im2col: col[patch, h*w].  Only training forwards park the buffer in
  // col_cache_ (backward consumes it); inference forwards use a local that
  // dies on return, so idle layers don't pin the im2col of their last input.
  Tensor col_local;
  Tensor& col = train ? col_cache_ : col_local;
  col = Tensor({patch, h * w});
  if (!train) col_cache_ = Tensor();
  im2col(input.data(), in_c_, h, w, k_, col.data(), hw);

  Tensor output({out_c_, h, w});
  // output[outC, h*w] = weight[outC, patch] * col[patch, h*w]
  gemm_acc(weight_.value.data(), col.data(), output.data(), out_c_, patch,
           h * w);
  for (int oc = 0; oc < out_c_; ++oc) {
    const float b = bias_.value[static_cast<std::size_t>(oc)];
    float* plane = output.data() + static_cast<std::size_t>(oc) * hw;
    for (int i = 0; i < h * w; ++i) plane[i] += b;
  }
  return output;
}

Tensor Conv2d::forward_batched(const Tensor& input, int batch) {
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int patch = in_c_ * k_ * k_;
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const std::size_t cols = static_cast<std::size_t>(batch) * hw;

  // One [patch, B*h*w] column matrix for the whole batch: sample b occupies
  // columns [b*hw, (b+1)*hw) and holds exactly the single-sample im2col of
  // that sample, so the one GEMM below computes, element for element, the
  // same k-ordered sums the single-sample forward would.
  Tensor col({patch, static_cast<int>(cols)});
  for (int bi = 0; bi < batch; ++bi) {
    im2col(input.data() + static_cast<std::size_t>(bi) * in_c_ * hw, in_c_, h,
           w, k_, col.data() + static_cast<std::size_t>(bi) * hw, cols);
  }

  Tensor big({out_c_, static_cast<int>(cols)});
  gemm_acc(weight_.value.data(), col.data(), big.data(), out_c_, patch,
           static_cast<int>(cols));

  // Scatter [outC, B*hw] -> [B, outC, hw], adding bias after the GEMM just
  // like the single-sample path.
  Tensor output({batch, out_c_, h, w});
  for (int bi = 0; bi < batch; ++bi) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const float b = bias_.value[static_cast<std::size_t>(oc)];
      const float* src = big.data() + static_cast<std::size_t>(oc) * cols +
                         static_cast<std::size_t>(bi) * hw;
      float* dst = output.data() +
                   (static_cast<std::size_t>(bi) * out_c_ + oc) * hw;
      for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i] + b;
    }
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const int h = last_h_;
  const int w = last_w_;
  const int pad = k_ / 2;
  const int patch = in_c_ * k_ * k_;

  // grad_weight += grad_out[outC, h*w] * col^T[h*w, patch]
  gemm_bt_acc(grad_output.data(), col_cache_.data(), weight_.grad.data(),
              out_c_, h * w, patch);
  // grad_bias
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* plane = grad_output.data() + static_cast<std::size_t>(oc) * h * w;
    float sum = 0.0f;
    for (int i = 0; i < h * w; ++i) sum += plane[i];
    bias_.grad[static_cast<std::size_t>(oc)] += sum;
  }
  // grad_col[patch, h*w] = weight^T[patch, outC] * grad_out[outC, h*w]
  Tensor grad_col({patch, h * w});
  gemm_at_acc(weight_.value.data(), grad_output.data(), grad_col.data(),
              patch, out_c_, h * w);
  // col2im.
  Tensor grad_input({in_c_, h, w});
  const float* gc = grad_col.data();
  for (int c = 0; c < in_c_; ++c) {
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx) {
        const int row = (c * k_ + ky) * k_ + kx;
        const float* src = gc + static_cast<std::size_t>(row) * h * w;
        for (int y = 0; y < h; ++y) {
          const int sy = y + ky - pad;
          if (sy < 0 || sy >= h) continue;
          for (int x = 0; x < w; ++x) {
            const int sx = x + kx - pad;
            if (sx < 0 || sx >= w) continue;
            grad_input.at(c, sy, sx) += src[static_cast<std::size_t>(y) * w + x];
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ------------------------------------------------------------ BatchNorm2d ---

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  running_mean_.value.zero();
  running_var_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  const int h = input.dim(1);
  const int w = input.dim(2);
  spatial_ = h * w;
  Tensor output({channels_, h, w});
  if (train) {
    x_hat_ = Tensor({channels_, h, w});
    inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  } else {
    // Inference never runs backward, so don't hold the normalized copy of
    // the last input alive.
    x_hat_ = Tensor();
    inv_std_.clear();
  }

  for (int c = 0; c < channels_; ++c) {
    const float* in = input.data() + static_cast<std::size_t>(c) * spatial_;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    float* out = output.data() + static_cast<std::size_t>(c) * spatial_;
    if (train) {
      float sum = 0.0f;
      for (int i = 0; i < spatial_; ++i) sum += in[i];
      const float mean = sum / static_cast<float>(spatial_);
      float sq = 0.0f;
      for (int i = 0; i < spatial_; ++i) {
        const float d = in[i] - mean;
        sq += d * d;
      }
      const float var = sq / static_cast<float>(spatial_);
      running_mean_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_.value[static_cast<std::size_t>(c)] +
          momentum_ * mean;
      running_var_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_.value[static_cast<std::size_t>(c)] +
          momentum_ * var;
      const float inv = 1.0f / std::sqrt(var + eps_);
      inv_std_[static_cast<std::size_t>(c)] = inv;
      float* xh = x_hat_.data() + static_cast<std::size_t>(c) * spatial_;
      for (int i = 0; i < spatial_; ++i) {
        xh[i] = (in[i] - mean) * inv;
        out[i] = g * xh[i] + b;
      }
    } else {
      const float mean = running_mean_.value[static_cast<std::size_t>(c)];
      const float var = running_var_.value[static_cast<std::size_t>(c)];
      const float inv = 1.0f / std::sqrt(var + eps_);
      for (int i = 0; i < spatial_; ++i) {
        const float xh = (in[i] - mean) * inv;
        out[i] = g * xh + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::forward_batched(const Tensor& input, int batch) {
  const int h = input.dim(2);
  const int w = input.dim(3);
  const std::size_t sp = static_cast<std::size_t>(h) * w;
  Tensor output(input.shape());
  for (int bi = 0; bi < batch; ++bi) {
    for (int c = 0; c < channels_; ++c) {
      const std::size_t off = (static_cast<std::size_t>(bi) * channels_ + c) * sp;
      const float* in = input.data() + off;
      float* out = output.data() + off;
      const float mean = running_mean_.value[static_cast<std::size_t>(c)];
      const float var = running_var_.value[static_cast<std::size_t>(c)];
      const float inv = 1.0f / std::sqrt(var + eps_);
      const float g = gamma_.value[static_cast<std::size_t>(c)];
      const float b = beta_.value[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < sp; ++i) {
        const float xh = (in[i] - mean) * inv;
        out[i] = g * xh + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  Tensor grad_input({channels_, grad_output.dim(1), grad_output.dim(2)});
  const float n = static_cast<float>(spatial_);
  for (int c = 0; c < channels_; ++c) {
    const float* go = grad_output.data() + static_cast<std::size_t>(c) * spatial_;
    const float* xh = x_hat_.data() + static_cast<std::size_t>(c) * spatial_;
    float* gi = grad_input.data() + static_cast<std::size_t>(c) * spatial_;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv = inv_std_[static_cast<std::size_t>(c)];

    float sum_go = 0.0f, sum_go_xh = 0.0f;
    for (int i = 0; i < spatial_; ++i) {
      sum_go += go[i];
      sum_go_xh += go[i] * xh[i];
    }
    gamma_.grad[static_cast<std::size_t>(c)] += sum_go_xh;
    beta_.grad[static_cast<std::size_t>(c)] += sum_go;

    // Standard BN backward over the normalization axis.
    const float k1 = g * inv / n;
    for (int i = 0; i < spatial_; ++i) {
      gi[i] = k1 * (n * go[i] - sum_go - xh[i] * sum_go_xh);
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

// ------------------------------------------------------------------ ReLU ---

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor output = input;
  if (train) {
    mask_.assign(input.size(), false);
    for (std::size_t i = 0; i < output.size(); ++i) {
      if (output[i] > 0.0f) {
        mask_[i] = true;
      } else {
        output[i] = 0.0f;
      }
    }
  } else {
    mask_.clear();
    for (std::size_t i = 0; i < output.size(); ++i) {
      if (!(output[i] > 0.0f)) output[i] = 0.0f;
    }
  }
  return output;
}

Tensor ReLU::forward_batched(const Tensor& input, int batch) {
  (void)batch;  // elementwise: the batch layout is irrelevant
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (!(output[i] > 0.0f)) output[i] = 0.0f;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (!mask_[i]) grad_input[i] = 0.0f;
  }
  return grad_input;
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : in_f_(in_features),
      out_f_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  weight_.value.init_he(rng, in_features);
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& input, bool train) {
  if (train) {
    input_cache_ = input;
  } else {
    input_cache_ = Tensor();
  }
  Tensor output({out_f_});
  const float* w = weight_.value.data();
  const float* x = input.data();
  for (int o = 0; o < out_f_; ++o) {
    const float* row = w + static_cast<std::size_t>(o) * in_f_;
    float sum = bias_.value[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_f_; ++i) sum += row[i] * x[i];
    output[static_cast<std::size_t>(o)] = sum;
  }
  return output;
}

Tensor Linear::forward_batched(const Tensor& input, int batch) {
  // Bias-first accumulation, exactly like forward(): the bias seeds the
  // running sum, so a GEMM that dots first and adds bias after would round
  // differently.
  Tensor output({batch, out_f_});
  const float* w = weight_.value.data();
  for (int bi = 0; bi < batch; ++bi) {
    const float* x = input.data() + static_cast<std::size_t>(bi) * in_f_;
    float* y = output.data() + static_cast<std::size_t>(bi) * out_f_;
    for (int o = 0; o < out_f_; ++o) {
      const float* row = w + static_cast<std::size_t>(o) * in_f_;
      float sum = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_f_; ++i) sum += row[i] * x[i];
      y[o] = sum;
    }
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const float* go = grad_output.data();
  const float* x = input_cache_.data();
  float* gw = weight_.grad.data();
  for (int o = 0; o < out_f_; ++o) {
    const float g = go[o];
    bias_.grad[static_cast<std::size_t>(o)] += g;
    if (g == 0.0f) continue;
    float* row = gw + static_cast<std::size_t>(o) * in_f_;
    for (int i = 0; i < in_f_; ++i) row[i] += g * x[i];
  }
  Tensor grad_input({in_f_});
  const float* w = weight_.value.data();
  for (int o = 0; o < out_f_; ++o) {
    const float g = go[o];
    if (g == 0.0f) continue;
    const float* row = w + static_cast<std::size_t>(o) * in_f_;
    for (int i = 0; i < in_f_; ++i) grad_input[static_cast<std::size_t>(i)] += g * row[i];
  }
  return grad_input;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// -------------------------------------------------------------- ResBlock ---

ResBlock::ResBlock(int channels, util::Rng& rng)
    : conv1_(channels, channels, 3, rng),
      conv2_(channels, channels, 3, rng),
      bn1_(channels),
      bn2_(channels) {}

Tensor ResBlock::forward(const Tensor& input, bool train) {
  Tensor h = conv1_.forward(input, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  h.add(input);  // skip connection
  return relu_out_.forward(h, train);
}

Tensor ResBlock::forward_batched(const Tensor& input, int batch) {
  Tensor h = conv1_.forward_batched(input, batch);
  h = bn1_.forward_batched(h, batch);
  h = relu1_.forward_batched(h, batch);
  h = conv2_.forward_batched(h, batch);
  h = bn2_.forward_batched(h, batch);
  h.add(input);  // skip connection
  return relu_out_.forward_batched(h, batch);
}

Tensor ResBlock::backward(const Tensor& grad_output) {
  Tensor g = relu_out_.backward(grad_output);
  const Tensor skip_grad = g;  // gradient flowing through the identity path
  g = bn2_.backward(g);
  g = conv2_.backward(g);
  g = relu1_.backward(g);
  g = bn1_.backward(g);
  g = conv1_.backward(g);
  g.add(skip_grad);
  return g;
}

void ResBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  bn2_.collect_parameters(out);
}

// ------------------------------------------------------------ Sequential ---

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::forward_batched(const Tensor& input, int batch) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward_batched(x, batch);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& layer : layers_) layer->collect_parameters(out);
}

}  // namespace mp::nn
