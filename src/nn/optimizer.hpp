#pragma once
// Optimizers consuming accumulated Parameter gradients.

#include <vector>

#include "nn/layers.hpp"

namespace mp::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void step() = 0;

  void zero_grad();

  /// Global L2 gradient-norm clipping (applied before step by callers that
  /// want it).  Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<Parameter*> parameters_;
};

/// SGD with momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> parameters, float lr, float momentum = 0.9f);
  void step() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace mp::nn
