#pragma once
// Stateless tensor functions: (masked) softmax and small numerics helpers
// used by the agent.  The availability mask s_a enters the policy as an
// additive log-mask, which is algebraically identical to "multiply softmax
// output by s_a, renormalize" (Sec. III-C) but keeps the gradient standard.

#include <vector>

#include "nn/tensor.hpp"

namespace mp::nn {

/// Softmax over a flat tensor (numerically stable).
Tensor softmax(const Tensor& logits);

/// Masked softmax: probability is proportional to exp(logit) * mask, with
/// mask >= 0.  When every mask entry is 0, falls back to the plain softmax.
Tensor masked_softmax(const Tensor& logits, const std::vector<double>& mask);

/// Gradient of  loss = -log p[action] * advantage  wrt the logits of a
/// (masked) softmax with output probabilities `probs`.
Tensor policy_gradient(const Tensor& probs, int action, float advantage);

}  // namespace mp::nn
