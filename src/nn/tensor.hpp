#pragma once
// Minimal CPU tensor for the agent networks: dense float storage with a
// shape, plus the initializers the layers need.  The layers in this library
// operate on single samples — 3-D [C, H, W] activations and 1-D vectors — so
// there is no batch dimension; gradient accumulation across an update window
// happens in the Parameter buffers instead.

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mp::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other) {
    return Tensor(other.shape(), 0.0f);
  }

  const std::vector<int>& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 3-D accessor for [C, H, W] tensors.
  float& at(int c, int h, int w) {
    return data_[flat3(c, h, w)];
  }
  float at(int c, int h, int w) const { return data_[flat3(c, h, w)]; }

  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int rank() const { return static_cast<int>(shape_.size()); }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// In-place reshape; total element count must be preserved.
  void reshape(std::vector<int> shape);

  /// He-normal initialization with fan-in (for conv/linear weights).
  void init_he(util::Rng& rng, int fan_in);

  /// Uniform init in [-bound, bound].
  void init_uniform(util::Rng& rng, float bound);

  /// this += other (shapes must match).
  void add(const Tensor& other);
  /// this *= s.
  void scale(float s);

 private:
  std::size_t flat3(int c, int h, int w) const {
    assert(shape_.size() == 3);
    return (static_cast<std::size_t>(c) * shape_[1] + h) * shape_[2] + w;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace mp::nn
