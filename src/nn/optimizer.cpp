#include "nn/optimizer.hpp"

#include <cmath>

namespace mp::nn {

void Optimizer::zero_grad() {
  for (Parameter* p : parameters_) p->grad.zero();
}

double Optimizer::clip_grad_norm(double max_norm) {
  double total = 0.0;
  for (Parameter* p : parameters_) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      total += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : parameters_) p->grad.scale(scale);
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> parameters, float lr, float momentum)
    : Optimizer(std::move(parameters)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(parameters_.size());
  for (Parameter* p : parameters_) velocity_.push_back(Tensor::zeros_like(p->grad));
}

void Sgd::step() {
  for (std::size_t k = 0; k < parameters_.size(); ++k) {
    Parameter* p = parameters_[k];
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      vel[i] = momentum_ * vel[i] + p->grad[i];
      p->value[i] -= lr_ * vel[i];
    }
  }
  zero_grad();
}

Adam::Adam(std::vector<Parameter*> parameters, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (Parameter* p : parameters_) {
    m_.push_back(Tensor::zeros_like(p->grad));
    v_.push_back(Tensor::zeros_like(p->grad));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < parameters_.size(); ++k) {
    Parameter* p = parameters_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      p->value[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
  zero_grad();
}

}  // namespace mp::nn
