#pragma once
// Dense float kernels behind the nn/ layers: GEMM variants and im2col.
//
// Two implementations of each GEMM live here: a `*_naive` reference (the
// loop nests the layers shipped with originally — kept as the bench/test
// baseline) and the default blocked + vectorized version used by the
// layers.  The blocked kernels tile the output into register blocks and
// stream SIMD lanes across the N dimension, but every output element still
// accumulates its K products in strictly ascending k order — blocking only
// reorders work *across* elements, never within one.  Compiler contraction
// is pinned off on this translation unit (-ffp-contract=off, see
// src/nn/CMakeLists.txt) so no code path can round differently from
// another behind our back.
//
// The contract that everything downstream relies on is PARTITION
// INVARIANCE: an output element computes identical bits no matter how the
// work around it is tiled, vectorized, or batched (SIMD body vs scalar
// tail, batch of 1 vs batch of 32).  That is what makes forward_many
// bit-identical per sample to forward and request coalescing in
// src/infer/ result-neutral — docs/INFERENCE.md "Kernel determinism".
//
// On FMA hardware (__FMA__ && __AVX2__, e.g. MP_NATIVE_ARCH on a modern
// x86 host) the forward kernel `gemm_acc` applies *explicit* fused
// multiply-adds — uniformly, to every k-term of every element, in the
// vector body and the scalar tail alike — so partition invariance is
// unchanged while each term rounds once instead of twice (~2x the
// arithmetic throughput; the whole point of the SIMD rewrite).  Absolute
// values therefore differ between FMA and no-FMA *builds* (both are valid
// single-rounding resp. double-rounding IEEE results); within one build
// every determinism property holds.  The backward kernels (gemm_at_acc,
// gemm_bt_acc) and every no-FMA build keep the plain mul-then-add form,
// bit-identical to the naive references.
//
// Vector width follows whatever MP_NATIVE_ARCH gives the compiler: the
// kernels use GCC/Clang vector extensions (8-float lanes, lowered to AVX
// when available and to pairs of SSE ops otherwise) with a scalar fallback
// for other compilers.

#include <cstddef>

namespace mp::nn {

/// out[M x N] += A[M x K] * B[K x N], all row-major.  Skips a[i][k] == 0
/// rows exactly like the naive kernel (im2col columns contain exact zeros
/// from padding, so the skip set — and therefore the FP op sequence — is
/// identical).  Fuses each multiply-add on FMA hardware (see file header:
/// partition-invariant either way; bit-identical to gemm_acc_naive only on
/// no-FMA builds).
void gemm_acc(const float* a, const float* b, float* out, int m, int k,
              int n);

/// out[M x N] += A^T[M x K] * B[K x N] where A is stored [K x M].
void gemm_at_acc(const float* a, const float* b, float* out, int m, int k,
                 int n);

/// out[M x N] += A[M x K] * B^T[K x N] where B is stored [N x K].  Each
/// element is a local dot product added to out once (the naive kernel's
/// semantics, preserved bit-for-bit).
void gemm_bt_acc(const float* a, const float* b, float* out, int m, int k,
                 int n);

/// Reference loop nests (pre-blocking implementations).  The blocked
/// kernels above compute the same sums in the same per-element order
/// (bit-identical on no-FMA builds; single-rounding on FMA builds);
/// bench_micro_kernels times the two side by side so the speedup stays
/// visible in results/BENCH_micro_kernels.json.
void gemm_acc_naive(const float* a, const float* b, float* out, int m, int k,
                    int n);
void gemm_at_acc_naive(const float* a, const float* b, float* out, int m,
                       int k, int n);
void gemm_bt_acc_naive(const float* a, const float* b, float* out, int m,
                       int k, int n);

/// im2col for a single [C, H, W] sample with a square kernel, stride 1 and
/// "same" zero padding: writes the [C*k*k, H*W] column matrix of `input`
/// into `col`, whose rows are `col_ld` floats apart.  A batched conv lays
/// B samples side by side in one [C*k*k, B*H*W] matrix by calling this per
/// sample with col = base + b*H*W and col_ld = B*H*W; the written values
/// are independent of col_ld, so batched columns equal single-sample
/// columns exactly.
void im2col(const float* input, int in_c, int h, int w, int k, float* col,
            std::size_t col_ld);

}  // namespace mp::nn
