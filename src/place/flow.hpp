#pragma once
// Shared flow plumbing (preprocessing and postprocessing stages of
// Algorithm 1): initial analytical placement, grid partition, clustering,
// coarse netlist, and the finalize step (macro legalization + cell placement
// + HPWL measurement).  Both the MCTS+RL placer and the RL-only baseline run
// on top of this context.

#include "cluster/coarse.hpp"
#include "gp/global_placer.hpp"
#include "grid/grid.hpp"
#include "legal/legalizer.hpp"

namespace mp::place {

struct FlowOptions {
  int grid_dim = 16;  ///< ζ (paper: 16)
  cluster::ClusterParams cluster;
  /// Mixed-size initial placement that seeds clustering distances.
  gp::GlobalPlaceOptions initial_gp = [] {
    gp::GlobalPlaceOptions o;
    o.move_macros = true;
    o.max_iterations = 8;
    return o;
  }();
  /// Final cell placement with macros fixed (DREAMPlace role, Sec. II-C).
  gp::GlobalPlaceOptions final_gp = [] {
    gp::GlobalPlaceOptions o;
    o.move_macros = false;
    return o;
  }();
  legal::MacroLegalizeOptions legalize;
  /// Post-legalization refinement rounds: each round places cells, re-solves
  /// the macro QP with cells fixed (displacement bounded to
  /// `refine_inflation_cells` grid cells around the current position) and
  /// removes overlaps again.  Recovers the grid-quantization loss of the
  /// anchor-pinned legalization; 0 reproduces the paper's flow verbatim.
  int refine_rounds = 3;
  double refine_inflation_cells = 1.0;
  /// When true, finalize additionally snaps std cells into legal rows
  /// (dp::legalize_rows) and runs the intra-row swap refinement, measuring
  /// HPWL on the row-legal placement.  Off by default: the paper reports
  /// the global-placement wirelength (DREAMPlace convention).
  bool row_legal_cells = false;
  /// Cooperative cancellation (docs/SERVICE.md): propagated into the GP
  /// stages and polled at refinement-round boundaries.  A cancelled finalize
  /// still completes macro legalization and one cell placement pass, so the
  /// design it leaves behind is structurally valid; only the optional
  /// refinement is skipped.  Inert/untriggered tokens are bit-identical.
  util::CancelToken cancel;
};

struct FlowContext {
  grid::GridSpec spec;
  cluster::Clustering clustering;
  cluster::CoarseDesign coarse;
};

/// Runs the preprocessing stage: initial global placement (mutates node
/// positions), ζ×ζ grid partition, clustering, coarse netlist.
FlowContext prepare_flow(netlist::Design& design, const FlowOptions& options);

/// Postprocessing: legalizes macros from the group `anchors` (Sec. II-B),
/// places cells with the analytical placer (Sec. II-C) and returns the final
/// HPWL of `design`.
double finalize_placement(netlist::Design& design, FlowContext& context,
                          const std::vector<grid::CellCoord>& anchors,
                          const FlowOptions& options);

/// Places cells with macros fixed and returns HPWL (used by the baselines
/// that position macros directly).
double place_cells_and_measure(netlist::Design& design,
                               const gp::GlobalPlaceOptions& final_gp);

}  // namespace mp::place
