#include "place/wiremask_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "grid/occupancy.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

using netlist::Design;
using netlist::NetId;
using netlist::NodeId;

namespace {

// Bounding box of the "committed" pins of one net (cells, pads, fixed and
// already-placed macros).  Unplaced movable macros are excluded until they
// commit.
struct NetBox {
  geometry::BoundingBox box;
  double weight = 1.0;
};

}  // namespace

namespace detail {

WiremaskResult wiremask_place(Design& design, const WiremaskOptions& options) {
  WiremaskResult result;
  util::Timer timer;

  gp::global_place(design, options.initial_gp);

  std::vector<NodeId> macros = design.movable_macros();
  std::sort(macros.begin(), macros.end(), [&](NodeId a, NodeId b) {
    return design.node(a).area() > design.node(b).area();
  });
  if (macros.empty()) {
    result.hpwl = place_cells_and_measure(design, options.final_gp);
    result.seconds = timer.seconds();
    return result;
  }

  std::vector<bool> is_unplaced(design.num_nodes(), false);
  for (NodeId id : macros) is_unplaced[static_cast<std::size_t>(id)] = true;

  // Per-net committed-pin boxes.
  std::vector<NetBox> boxes(design.num_nets());
  std::vector<bool> net_usable(design.num_nets(), false);
  for (std::size_t n = 0; n < design.num_nets(); ++n) {
    const netlist::Net& net = design.net(static_cast<NetId>(n));
    if (net.pins.size() < 2 || net.pins.size() > options.max_net_degree) continue;
    net_usable[n] = true;
    boxes[n].weight = net.weight;
    for (const netlist::PinRef& pin : net.pins) {
      if (is_unplaced[static_cast<std::size_t>(pin.node)]) continue;
      boxes[n].box.add(design.pin_position(pin));
    }
  }

  const grid::GridSpec spec(design.region(), options.grid_dim);
  grid::OccupancyMap occupancy(spec);
  // Fixed macros pre-fill the occupancy.
  for (NodeId id : design.macros()) {
    const netlist::Node& node = design.node(id);
    if (!node.fixed) continue;
    const grid::Footprint fp = grid::make_footprint(spec, node.width, node.height);
    grid::CellCoord anchor = spec.cell_of(node.position);
    anchor.gx = std::min(anchor.gx, spec.dim() - fp.nx);
    anchor.gy = std::min(anchor.gy, spec.dim() - fp.ny);
    if (anchor.gx >= 0 && anchor.gy >= 0) occupancy.place(fp, anchor);
  }

  const auto& adjacency = design.node_nets();
  for (NodeId macro : macros) {
    netlist::Node& node = design.node(macro);
    const grid::Footprint fp = grid::make_footprint(spec, node.width, node.height);
    const std::vector<double> availability =
        grid::availability_map(occupancy, fp);

    // Wiremask: incremental HPWL of placing this macro's pins at each anchor.
    int best_action = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    bool best_available = false;
    for (int flat = 0; flat < spec.num_cells(); ++flat) {
      const grid::CellCoord anchor = spec.coord(flat);
      if (!occupancy.fits(fp, anchor)) continue;
      const geometry::Point origin = spec.cell_origin(anchor);
      double cost = 0.0;
      for (NetId net_id : adjacency[static_cast<std::size_t>(macro)]) {
        if (!net_usable[static_cast<std::size_t>(net_id)]) continue;
        const NetBox& nb = boxes[static_cast<std::size_t>(net_id)];
        // Incremental growth of the committed box when this macro's pins
        // land relative to `origin`.
        for (const netlist::PinRef& pin : design.net(net_id).pins) {
          if (pin.node != macro) continue;
          const geometry::Point p{origin.x + pin.dx, origin.y + pin.dy};
          if (nb.box.empty()) continue;
          const double grow_x = std::max(0.0, nb.box.min_x() - p.x) +
                                std::max(0.0, p.x - nb.box.max_x());
          const double grow_y = std::max(0.0, nb.box.min_y() - p.y) +
                                std::max(0.0, p.y - nb.box.max_y());
          cost += nb.weight * (grow_x + grow_y);
        }
      }
      ++result.candidates_evaluated;
      const bool available = availability[static_cast<std::size_t>(flat)] > 0.0;
      // Prefer available (non-overflowing) anchors; among equals, min cost.
      const bool better =
          (available && !best_available) ||
          (available == best_available && cost < best_cost);
      if (better) {
        best_cost = cost;
        best_action = flat;
        best_available = available;
      }
    }
    if (best_action < 0) best_action = 0;
    const grid::CellCoord anchor = spec.coord(best_action);
    const geometry::Point origin = spec.cell_origin(anchor);
    node.position = origin;
    if (occupancy.fits(fp, anchor)) occupancy.place(fp, anchor);
    is_unplaced[static_cast<std::size_t>(macro)] = false;
    // Commit this macro's pins into the net boxes.
    for (NetId net_id : adjacency[static_cast<std::size_t>(macro)]) {
      if (!net_usable[static_cast<std::size_t>(net_id)]) continue;
      for (const netlist::PinRef& pin : design.net(net_id).pins) {
        if (pin.node == macro) {
          boxes[static_cast<std::size_t>(net_id)].box.add(
              design.pin_position(pin));
        }
      }
    }
  }

  legal::legalize_flat(design, options.legalize);
  result.hpwl = place_cells_and_measure(design, options.final_gp);
  result.seconds = timer.seconds();
  util::log_info() << "wiremask_place: hpwl=" << result.hpwl;
  return result;
}

}  // namespace detail

}  // namespace mp::place
