#pragma once
// RL-only placer — the CT [27] stand-in: identical preprocessing and
// pre-training to the full flow, but the final allocation comes from a greedy
// rollout of the trained policy instead of MCTS (Table III's "relies solely
// on RL" comparison, and the blue curve of Fig. 5).

#include "place/placer.hpp"

namespace mp::place {

struct RlOnlyResult {
  double hpwl = 0.0;
  double coarse_wirelength = 0.0;
  double seconds = 0.0;
  int macro_groups = 0;
  rl::TrainResult train_result;
  bool cancelled = false;  ///< stopped early via MctsRlOptions::cancel
  bool finalized = false;  ///< legalization + cell placement completed
};

namespace detail {

/// Flow plumbing behind place::run (Preset::kRlOnly) — not public API.
/// Uses MctsRlOptions for parity with the full flow; options.mcts is ignored.
RlOnlyResult rl_only_place(netlist::Design& design,
                           const MctsRlOptions& options = {});

/// Same flow on an already-prepared context (warm-cache path; see
/// detail::mcts_rl_place_prepared for the contract).
RlOnlyResult rl_only_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options = {});

}  // namespace detail

}  // namespace mp::place
