#pragma once
// RL-only placer — the CT [27] stand-in: identical preprocessing and
// pre-training to the full flow, but the final allocation comes from a greedy
// rollout of the trained policy instead of MCTS (Table III's "relies solely
// on RL" comparison, and the blue curve of Fig. 5).

#include "place/placer.hpp"

namespace mp::place {

struct RlOnlyResult {
  double hpwl = 0.0;
  double coarse_wirelength = 0.0;
  double seconds = 0.0;
  rl::TrainResult train_result;
};

/// Uses MctsRlOptions for parity with the full flow; options.mcts is ignored.
RlOnlyResult rl_only_place(netlist::Design& design,
                           const MctsRlOptions& options = {});

}  // namespace mp::place
