#pragma once
// Simulated-annealing macro placer — the stand-in for the simulated-
// evolution (SE) macro placer of [26] used in Table II.  Std cells are first
// placed analytically; the annealer then moves/swaps movable macros
// minimizing the HPWL of macro-incident nets plus an overlap penalty, and
// the result is legalized (sequence pair + LP) before final cell placement.

#include <cstdint>

#include "place/flow.hpp"

namespace mp::place {

struct SaOptions {
  int iterations = 20000;
  /// Initial acceptance probability for uphill moves (temperature is
  /// calibrated from sampled move deltas).
  double initial_acceptance = 0.8;
  double cooling = 0.97;         ///< geometric factor applied per batch
  int batch = 200;               ///< moves per temperature step
  double swap_probability = 0.2; ///< vs displacement
  double overlap_weight = -1.0;  ///< <0: auto (scales with HPWL magnitude)
  std::uint64_t seed = 11;
  gp::GlobalPlaceOptions initial_gp = [] {
    gp::GlobalPlaceOptions o;
    o.move_macros = true;
    o.max_iterations = 8;
    return o;
  }();
  gp::GlobalPlaceOptions final_gp;
  legal::MacroLegalizeOptions legalize;
};

struct SaResult {
  double hpwl = 0.0;
  double seconds = 0.0;
  double accept_ratio = 0.0;
  double final_cost = 0.0;
};

namespace detail {

/// Flow plumbing behind place::run (Preset::kSa) — not public API.
SaResult sa_place(netlist::Design& design, const SaOptions& options = {});

}  // namespace detail

}  // namespace mp::place
