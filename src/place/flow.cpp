#include "place/flow.hpp"

#include "check/check.hpp"
#include "check/validators.hpp"
#include "dp/detailed.hpp"
#include "dp/row_legalizer.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

FlowContext prepare_flow(netlist::Design& design, const FlowOptions& options) {
  MP_OBS_SPAN("flow.prepare");
  util::Timer timer;
  {
    MP_OBS_SPAN("flow.initial_gp");
    gp::GlobalPlaceOptions initial_gp = options.initial_gp;
    if (options.cancel.valid()) initial_gp.cancel = options.cancel;
    gp::global_place(design, initial_gp);
  }
  util::log_info() << "prepare_flow: initial GP in " << timer.seconds() << "s";

  FlowContext context{
      grid::GridSpec(design.region(), options.grid_dim),
      {},
      {},
  };
  MP_OBS_SPAN("flow.clustering");
  context.clustering = cluster::cluster_design(design, context.spec,
                                               options.cluster);
  context.coarse = cluster::build_coarse_design(design, context.clustering);
  MP_OBS_GAUGE("flow.macro_groups",
               static_cast<double>(context.clustering.macro_groups.size()));
  MP_OBS_GAUGE("flow.cell_groups",
               static_cast<double>(context.clustering.cell_groups.size()));
  check::validate_positions_finite(design, "flow.prepare");
  if (check::validate_level() >= 1) {
    // Every macro group must carry a positive footprint and every original
    // macro must belong to exactly one group (the -1 sentinel marks cells).
    for (const cluster::Group& group : context.clustering.macro_groups) {
      MP_CHECK_GT(group.width, 0.0, "macro group with non-positive width");
      MP_CHECK_GT(group.height, 0.0, "macro group with non-positive height");
    }
    for (netlist::NodeId id : design.movable_macros()) {
      const int mg = context.clustering.macro_group_of[static_cast<std::size_t>(id)];
      MP_CHECK_GE(mg, 0, "movable macro \"%s\" not assigned to a macro group",
                  design.node(id).name.c_str());
      MP_CHECK_LT(static_cast<std::size_t>(mg),
                  context.clustering.macro_groups.size(),
                  "macro group index out of range");
    }
  }
  return context;
}

double finalize_placement(netlist::Design& design, FlowContext& context,
                          const std::vector<grid::CellCoord>& anchors,
                          const FlowOptions& options) {
  MP_OBS_SPAN("flow.finalize");
  gp::GlobalPlaceOptions final_gp = options.final_gp;
  if (options.cancel.valid()) final_gp.cancel = options.cancel;
  {
    MP_OBS_SPAN("flow.legalize");
    legal::legalize_groups(design, context.coarse, context.clustering,
                           context.spec, anchors, options.legalize);
  }
  double hpwl = place_cells_and_measure(design, final_gp);
  MP_OBS_HIST("flow.hpwl_after_legalize", hpwl);
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(hpwl, "HPWL after legalization");
    MP_CHECK_GE(hpwl, 0.0, "HPWL after legalization");
  }

  // Bounded macro refinement interleaved with cell placement (see
  // FlowOptions::refine_rounds).  Rounds that do not improve are rolled
  // back, so refinement can only help.
  for (int round = 0; round < options.refine_rounds; ++round) {
    if (options.cancel.cancelled()) break;  // keep the legal placement we have
    MP_OBS_SPAN("flow.refine_round");
    MP_OBS_COUNT("flow.refine_rounds", 1);
    const std::vector<netlist::NodeId>& movable = design.movable_macros();
    if (movable.empty()) break;
    std::vector<geometry::Point> snapshot;
    snapshot.reserve(design.num_nodes());
    for (std::size_t i = 0; i < design.num_nodes(); ++i) {
      snapshot.push_back(design.node(static_cast<netlist::NodeId>(i)).position);
    }

    // Widen the allowed displacement each round (1x, 2x, 4x, ... cells).
    const double widen =
        options.refine_inflation_cells * static_cast<double>(1 << round);
    const double dx = widen * context.spec.cell_width();
    const double dy = widen * context.spec.cell_height();
    std::vector<qp::BoxBound> bounds;
    bounds.reserve(movable.size());
    for (netlist::NodeId id : movable) {
      const geometry::Point c = design.node(id).center();
      bounds.push_back({id, geometry::Rect::from_corners(c.x - dx, c.y - dy,
                                                         c.x + dx, c.y + dy)});
    }
    qp::solve_quadratic_placement(design, movable, {}, bounds,
                                  options.legalize.qp);
    legal::legalize_flat(design, options.legalize);
    const double refined = place_cells_and_measure(design, final_gp);
    if (refined >= hpwl) {
      // Roll back and try the next (wider) round.
      for (std::size_t i = 0; i < design.num_nodes(); ++i) {
        design.node(static_cast<netlist::NodeId>(i)).position = snapshot[i];
      }
      continue;
    }
    MP_OBS_COUNT("flow.refine_rounds_accepted", 1);
    hpwl = refined;
  }

  if (options.row_legal_cells) {
    MP_OBS_SPAN("flow.row_legalize");
    dp::legalize_rows(design);
    dp::refine_detailed(design);
    hpwl = design.total_hpwl();
  }
  MP_OBS_HIST("flow.final_hpwl", hpwl);
  // Final stage boundary: the flow's contract is a legal macro placement
  // with a finite, reproducible HPWL.
  check::validate_placement_legal(design, "flow.finalize");
  check::validate_positions_finite(design, "flow.finalize");
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(hpwl, "final HPWL");
    MP_CHECK_NEAR(hpwl, design.total_hpwl(),
                  1e-9 * (1.0 + design.total_hpwl()),
                  "returned HPWL diverges from the design state");
  }
  return hpwl;
}

double place_cells_and_measure(netlist::Design& design,
                               const gp::GlobalPlaceOptions& final_gp) {
  MP_OBS_SPAN("flow.final_gp");
  gp::GlobalPlaceOptions o = final_gp;
  o.move_macros = false;
  const gp::GlobalPlaceResult r = gp::global_place(design, o);
  return r.hpwl;
}

}  // namespace mp::place
