#include "place/sa_placer.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mp::place {

using netlist::Design;
using netlist::NetId;
using netlist::NodeId;

namespace {

// Cost model over movable macros: HPWL of macro-incident nets (other pins
// fixed at current positions) + overlap penalty.
class SaCost {
 public:
  SaCost(Design& design, double overlap_weight, std::size_t max_net_degree = 64)
      : design_(design), overlap_weight_(overlap_weight) {
    movable_ = design.movable_macros();
    local_of_.assign(design.num_nodes(), -1);
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      local_of_[static_cast<std::size_t>(movable_[i])] = static_cast<int>(i);
    }
    // Nets touching at least one movable macro.
    const auto& adjacency = design.node_nets();
    std::vector<bool> seen(design.num_nets(), false);
    for (NodeId m : movable_) {
      for (NetId n : adjacency[static_cast<std::size_t>(m)]) {
        if (seen[static_cast<std::size_t>(n)]) continue;
        seen[static_cast<std::size_t>(n)] = true;
        if (design.net(n).pins.size() <= max_net_degree) nets_.push_back(n);
      }
    }
    nets_of_macro_.assign(movable_.size(), {});
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      for (const netlist::PinRef& pin : design.net(nets_[k]).pins) {
        const int local = local_of_[static_cast<std::size_t>(pin.node)];
        if (local >= 0) {
          auto& v = nets_of_macro_[static_cast<std::size_t>(local)];
          if (v.empty() || v.back() != k) v.push_back(k);
        }
      }
    }
    net_hpwl_.resize(nets_.size());
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      net_hpwl_[k] = weighted_hpwl(k);
    }
    wirelength_ = 0.0;
    for (double h : net_hpwl_) wirelength_ += h;
    overlap_ = total_overlap();
  }

  const std::vector<NodeId>& movable() const { return movable_; }
  double cost() const { return wirelength_ + overlap_weight_ * overlap_; }
  double wirelength() const { return wirelength_; }
  double overlap() const { return overlap_; }
  void set_overlap_weight(double w) { overlap_weight_ = w; }

  /// Applies a position change and returns the cost delta.
  double move(std::size_t local, const geometry::Point& new_pos) {
    const double before = macro_cost(local);
    design_.node(movable_[local]).position = new_pos;
    return macro_cost_update(local) - before;
  }

  /// Swaps positions (centers aligned) of two macros; returns cost delta.
  double swap(std::size_t a, std::size_t b) {
    const double before = macro_cost(a) + macro_cost(b) - pair_overlap(a, b);
    netlist::Node& na = design_.node(movable_[a]);
    netlist::Node& nb = design_.node(movable_[b]);
    const geometry::Point ca = na.center();
    const geometry::Point cb = nb.center();
    na.position = {cb.x - na.width / 2.0, cb.y - na.height / 2.0};
    nb.position = {ca.x - nb.width / 2.0, ca.y - nb.height / 2.0};
    const double after =
        macro_cost_update(a) + macro_cost_update(b) - pair_overlap(a, b);
    return after - before;
  }

 private:
  double weighted_hpwl(std::size_t net_index) const {
    const NetId id = nets_[net_index];
    return design_.net(id).weight * design_.net_hpwl(id);
  }

  // Overlap of one macro with all other movables and all fixed macros.
  double macro_overlap(std::size_t local) const {
    const geometry::Rect r = design_.node(movable_[local]).rect();
    double total = 0.0;
    for (NodeId other : design_.macros()) {
      if (other == movable_[local]) continue;
      total += geometry::overlap_area(r, design_.node(other).rect());
    }
    return total;
  }

  double pair_overlap(std::size_t a, std::size_t b) const {
    return overlap_weight_ *
           geometry::overlap_area(design_.node(movable_[a]).rect(),
                                  design_.node(movable_[b]).rect());
  }

  double total_overlap() const {
    double total = 0.0;
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      total += macro_overlap(i);
    }
    // Movable-movable pairs counted twice; fixed counted once per movable.
    // For the penalty this constant factor is irrelevant; keep as-is.
    return total;
  }

  // Cost contribution of one macro (its nets + its overlap).
  double macro_cost(std::size_t local) const {
    double c = 0.0;
    for (std::size_t k : nets_of_macro_[local]) c += net_hpwl_[k];
    return c + overlap_weight_ * macro_overlap(local);
  }

  // Same, but refreshes the cached net HPWLs and the aggregates.
  double macro_cost_update(std::size_t local) {
    double c = 0.0;
    for (std::size_t k : nets_of_macro_[local]) {
      const double fresh = weighted_hpwl(k);
      wirelength_ += fresh - net_hpwl_[k];
      net_hpwl_[k] = fresh;
      c += fresh;
    }
    return c + overlap_weight_ * macro_overlap(local);
  }

  Design& design_;
  double overlap_weight_;
  std::vector<NodeId> movable_;
  std::vector<int> local_of_;
  std::vector<NetId> nets_;
  std::vector<std::vector<std::size_t>> nets_of_macro_;
  std::vector<double> net_hpwl_;
  double wirelength_ = 0.0;
  double overlap_ = 0.0;
};

}  // namespace

namespace detail {

SaResult sa_place(Design& design, const SaOptions& options) {
  SaResult result;
  util::Timer timer;
  util::Rng rng(options.seed);

  gp::global_place(design, options.initial_gp);

  const std::vector<NodeId> movable = design.movable_macros();
  if (movable.empty()) {
    result.hpwl = place_cells_and_measure(design, options.final_gp);
    result.seconds = timer.seconds();
    return result;
  }

  SaCost cost(design, 1.0);
  // Auto overlap weight: make a full-macro overlap comparable to the whole
  // macro wirelength.
  double overlap_weight = options.overlap_weight;
  if (overlap_weight < 0.0) {
    double macro_area = 0.0;
    for (NodeId id : movable) macro_area += design.node(id).area();
    overlap_weight = std::max(1e-6, 2.0 * cost.wirelength() / std::max(1.0, macro_area));
  }
  cost.set_overlap_weight(overlap_weight);

  const geometry::Rect region = design.region();
  const auto clamp_pos = [&](NodeId id, geometry::Point p) {
    const netlist::Node& node = design.node(id);
    p.x = std::clamp(p.x, region.left(),
                     std::max(region.left(), region.right() - node.width));
    p.y = std::clamp(p.y, region.bottom(),
                     std::max(region.bottom(), region.top() - node.height));
    return p;
  };

  // Temperature calibration from sampled random-move deltas.
  double avg_uphill = 0.0;
  {
    int uphill = 0;
    for (int s = 0; s < 50; ++s) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1));
      const geometry::Point old_pos = design.node(movable[i]).position;
      const geometry::Point candidate = clamp_pos(
          movable[i], {old_pos.x + rng.normal(0.0, region.w * 0.1),
                       old_pos.y + rng.normal(0.0, region.h * 0.1)});
      const double delta = cost.move(i, candidate);
      if (delta > 0.0) {
        avg_uphill += delta;
        ++uphill;
      }
      cost.move(i, old_pos);  // undo
    }
    avg_uphill = (uphill > 0) ? avg_uphill / uphill : 1.0;
  }
  double temperature =
      -avg_uphill / std::log(std::max(1e-6, options.initial_acceptance));

  long long accepted = 0;
  const double initial_range = 0.25;
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double progress = static_cast<double>(iter) / options.iterations;
    const double range = initial_range * (1.0 - 0.9 * progress);

    double delta = 0.0;
    // Proposal.
    if (movable.size() >= 2 && rng.bernoulli(options.swap_probability)) {
      std::size_t a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1));
      std::size_t b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1));
      if (a == b) b = (b + 1) % movable.size();
      delta = cost.swap(a, b);
      if (delta > 0.0 && !rng.bernoulli(std::exp(-delta / temperature))) {
        cost.swap(a, b);  // reject: swap back
      } else {
        ++accepted;
      }
    } else {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1));
      const geometry::Point old_pos = design.node(movable[i]).position;
      const geometry::Point candidate = clamp_pos(
          movable[i], {old_pos.x + rng.normal(0.0, region.w * range),
                       old_pos.y + rng.normal(0.0, region.h * range)});
      delta = cost.move(i, candidate);
      if (delta > 0.0 && !rng.bernoulli(std::exp(-delta / temperature))) {
        cost.move(i, old_pos);  // reject
      } else {
        ++accepted;
      }
    }
    if ((iter + 1) % options.batch == 0) temperature *= options.cooling;
  }
  result.accept_ratio =
      static_cast<double>(accepted) / std::max(1, options.iterations);
  result.final_cost = cost.cost();

  legal::legalize_flat(design, options.legalize);
  result.hpwl = place_cells_and_measure(design, options.final_gp);
  result.seconds = timer.seconds();
  util::log_info() << "sa_place: hpwl=" << result.hpwl
                   << " accept=" << result.accept_ratio;
  return result;
}

}  // namespace detail

}  // namespace mp::place
