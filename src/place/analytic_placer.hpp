#pragma once
// Analytical mixed-size baseline — the RePlAce [10] / DREAMPlace [25]
// stand-in (Tables II-III): one mixed-size global placement moves macros and
// cells together, macros are legalized flat, cells are re-placed with macros
// fixed.

#include "place/flow.hpp"

namespace mp::place {

struct AnalyticOptions {
  gp::GlobalPlaceOptions mixed_gp = [] {
    gp::GlobalPlaceOptions o;
    o.move_macros = true;
    o.max_iterations = 16;
    return o;
  }();
  gp::GlobalPlaceOptions final_gp;
  legal::MacroLegalizeOptions legalize;
};

struct AnalyticResult {
  double hpwl = 0.0;
  double seconds = 0.0;
  double mixed_overflow = 0.0;
};

namespace detail {

/// Flow plumbing behind place::run (Preset::kAnalytic) — not public API.
AnalyticResult analytic_place(netlist::Design& design,
                              const AnalyticOptions& options = {});

}  // namespace detail

}  // namespace mp::place
