#pragma once
// Wiremask greedy placer — the MaskPlace [19] stand-in for Table III.
// After an analytical placement of the std cells, movable macros are placed
// one by one (largest first) on a fine grid; for every candidate position the
// *exact incremental HPWL* of the macro's nets is computed from the bounding
// boxes of the already-placed pins (the "wiremask" idea), and the cheapest
// non-overflowing position wins.

#include <cstdint>

#include "place/flow.hpp"

namespace mp::place {

struct WiremaskOptions {
  int grid_dim = 32;               ///< candidate grid resolution
  std::size_t max_net_degree = 64; ///< ignore larger nets in the mask
  gp::GlobalPlaceOptions initial_gp = [] {
    gp::GlobalPlaceOptions o;
    o.move_macros = true;
    o.max_iterations = 8;
    return o;
  }();
  gp::GlobalPlaceOptions final_gp;
  legal::MacroLegalizeOptions legalize;
};

struct WiremaskResult {
  double hpwl = 0.0;
  double seconds = 0.0;
  long long candidates_evaluated = 0;
};

namespace detail {

/// Flow plumbing behind place::run (Preset::kWiremask) — not public API.
WiremaskResult wiremask_place(netlist::Design& design,
                              const WiremaskOptions& options = {});

}  // namespace detail

}  // namespace mp::place
