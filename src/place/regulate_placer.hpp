#pragma once
// Incremental / ECO re-placement (preset=regulate) — the macro-regulator
// flow of "RL Policy as Macro Regulator Rather than Macro Placer"
// (arXiv 2412.07167) mapped onto this repo's MCTS-guided-by-RL machinery:
// accept an existing legal placement (from any other preset, or a
// user-submitted .pl), and run bounded-perturbation MCTS/RL that nudges
// macro groups within a trust region around their incumbent grid anchors to
// recover HPWL after a netlist delta, then re-legalize only the touched
// region (macros whose groups did not move keep their exact input
// coordinates).
//
// The trust region is a per-group action mask (rl::PlacementEnv::
// set_allowed_actions): a Chebyshev-`radius` cell neighborhood of the
// incumbent anchor for movable groups, the incumbent cell alone for frozen
// ones.  Frozen steps are forced moves, which the search commits directly
// (mcts::MctsOptions::auto_commit_forced) so the whole exploration budget
// goes to the groups that may actually move.  Results are deterministic:
// bit-identical across thread counts, eval_batch settings and infer-engine
// on/off, same as every other preset.
//
// This header must stay includable from place/placer.hpp (it defines the
// PlacerSpec member type), so it must not include placer.hpp itself.

#include <string>
#include <vector>

#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::place {

struct RegulateOptions {
  FlowOptions flow;
  rl::AgentConfig agent = [] {
    rl::AgentConfig c;
    c.channels = 32;
    c.res_blocks = 3;
    return c;
  }();
  /// Fine-tune budget; spec_from_preset derives a fraction of the from-
  /// scratch episode count — the trust region shrinks the action space so
  /// far that a short run converges (the regulator paper's core economy).
  rl::TrainOptions train;
  mcts::MctsOptions mcts;
  /// Trust region: movable groups may re-anchor within this Chebyshev cell
  /// distance of their incumbent anchor (0 pins everything).
  int radius = 2;
  /// Macro names whose groups must not move (a frozen member freezes its
  /// whole group).  Unknown names are warned about and ignored.
  std::vector<std::string> frozen;
  /// Upper bound on the number of groups allowed to move; 0 = unbounded.
  /// When the movable count exceeds it, groups are ranked by incident
  /// coarse-net HPWL ("tension", ties by group index) and only the top
  /// max_moves stay movable — the ECO intuition that the worst-stretched
  /// macros are the ones worth touching.
  int max_moves = 0;
  /// CoarseEvaluator density term (see MctsRlOptions::overflow_penalty).
  double overflow_penalty = 0.0;
  /// Pre-trained parameters restored into the agent before fine-tuning.
  std::vector<nn::Tensor> initial_parameters;
  /// Cooperative cancellation (propagated into flow/train/mcts).  A
  /// cancelled regulate keeps the input placement — the design is always
  /// left fully placed and legal.
  util::CancelToken cancel;
};

struct RegulateResult {
  double input_hpwl = 0.0;  ///< HPWL of the placement as received
  double hpwl = 0.0;        ///< final HPWL; never worse than the legal input
  double coarse_wirelength = 0.0;
  double train_seconds = 0.0;
  double mcts_seconds = 0.0;
  double total_seconds = 0.0;
  int macro_groups = 0;
  int cell_groups = 0;
  int moved_groups = 0;   ///< groups whose anchor changed vs the incumbent
  int frozen_groups = 0;  ///< groups pinned by `frozen` + `max_moves`
  rl::TrainResult train_result;
  mcts::MctsResult mcts_result;
  bool cancelled = false;
  /// True when the design ends fully placed and legal — regulate guarantees
  /// it whenever the input was legal (worst case it restores the input).
  bool finalized = false;
};

/// Preprocessing for the regulate flow: ζ×ζ grid partition, clustering and
/// coarse netlist on the *incumbent* positions — unlike prepare_flow there
/// is no initial global placement, so `design` is not mutated and the input
/// placement survives to seed the clustering distances and the trust
/// region.  Cacheable per (design bytes, placement bytes, grid_dim) — the
/// service's warm ECO path (src/svc/cache.hpp).
FlowContext prepare_regulate_flow(const netlist::Design& design,
                                  const FlowOptions& options);

namespace detail {

/// Full regulate flow in place: prepare_regulate_flow + fine-tune + trust-
/// region MCTS + touched-region re-legalization.  Owns one obs run-report
/// window.  `design` must hold the incumbent placement.
RegulateResult regulate_place(netlist::Design& design,
                              const RegulateOptions& options = {});

/// Same flow on an already-prepared context (warm-cache path).  `context`
/// must come from prepare_regulate_flow on this design + placement; the
/// caller owns the telemetry window.  Bit-identical to a cold
/// regulate_place at equal options.
RegulateResult regulate_place_prepared(netlist::Design& design,
                                       FlowContext& context,
                                       const RegulateOptions& options = {});

}  // namespace detail

}  // namespace mp::place
