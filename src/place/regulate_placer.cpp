#include "place/regulate_placer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "check/check.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

namespace {

// One token cancels the whole flow (same contract as the mcts preset).
RegulateOptions propagate_cancel(const RegulateOptions& options) {
  if (!options.cancel.valid()) return options;
  RegulateOptions o = options;
  o.flow.cancel = o.cancel;
  o.train.cancel = o.cancel;
  o.mcts.cancel = o.cancel;
  return o;
}

// Incumbent grid anchor of a group: the cell of its lower-left corner as
// implied by the (area-weighted) member centroid, clamped so the footprint
// stays on-chip — the same derivation the analytic guidance of the mcts
// preset uses, so a regulate run on an mcts result starts from the anchors
// that flow committed.
grid::CellCoord incumbent_anchor(const grid::GridSpec& spec,
                                 const cluster::Group& group) {
  const grid::CellCoord fp = spec.footprint_cells(group.width, group.height);
  grid::CellCoord c = spec.cell_of({group.centroid.x - group.width / 2.0,
                                    group.centroid.y - group.height / 2.0});
  c.gx = std::max(0, std::min(c.gx, spec.dim() - fp.gx));
  c.gy = std::max(0, std::min(c.gy, spec.dim() - fp.gy));
  return c;
}

// Sum of weighted coarse-net HPWL incident to a group node — the "tension"
// that ranks which groups are worth moving when max_moves caps the budget.
double group_tension(const cluster::CoarseDesign& coarse,
                     netlist::NodeId group_node) {
  double tension = 0.0;
  const auto& node_nets = coarse.design.node_nets();
  for (netlist::NetId net :
       node_nets[static_cast<std::size_t>(group_node)]) {
    tension += coarse.design.net(net).weight * coarse.design.net_hpwl(net);
  }
  return tension;
}

RegulateResult regulate_from_context(netlist::Design& design,
                                     FlowContext& context,
                                     const RegulateOptions& options) {
  RegulateResult result;
  util::Timer total_timer;
  const cluster::Clustering& clustering = context.clustering;
  const grid::GridSpec& spec = context.spec;
  const std::size_t num_groups = clustering.macro_groups.size();
  result.macro_groups = static_cast<int>(num_groups);
  result.cell_groups = static_cast<int>(clustering.cell_groups.size());
  result.input_hpwl = design.total_hpwl();
  MP_OBS_GAUGE("regulate.input_hpwl", result.input_hpwl);

  // --- Legal baseline -----------------------------------------------------
  // The netlist delta behind an ECO job (resized/added macros) may have made
  // the incoming placement slightly illegal; restore legality first so the
  // fallback below can always return a legal design.  legalize_flat only
  // processes overlap components, so a legal input passes through untouched.
  const double area_scale = std::max(1.0, design.region().area());
  if (design.macro_overlap_area() / area_scale > 1e-9 ||
      !design.all_inside_region()) {
    MP_OBS_SPAN("regulate.input_legalize");
    legal::legalize_flat(design, options.flow.legalize);
  }
  const double baseline_hpwl = design.total_hpwl();
  std::vector<geometry::Point> snapshot;
  snapshot.reserve(design.num_nodes());
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    snapshot.push_back(design.node(static_cast<netlist::NodeId>(i)).position);
  }

  // --- Trust region -------------------------------------------------------
  std::vector<grid::CellCoord> incumbent;
  incumbent.reserve(num_groups);
  for (const cluster::Group& group : clustering.macro_groups) {
    incumbent.push_back(incumbent_anchor(spec, group));
  }

  std::vector<char> frozen(num_groups, 0);
  for (const std::string& name : options.frozen) {
    const std::optional<netlist::NodeId> id = design.find_node(name);
    int g = -1;
    if (id.has_value()) {
      g = clustering.macro_group_of[static_cast<std::size_t>(*id)];
    }
    if (g < 0) {
      util::log_warn() << "regulate: frozen name \"" << name
                       << "\" is not a movable macro; ignoring";
      continue;
    }
    frozen[static_cast<std::size_t>(g)] = 1;
  }
  if (options.max_moves > 0) {
    // Rank the still-movable groups by tension (ties by index, so the
    // ordering — and therefore the result — is deterministic) and freeze
    // everything below the top max_moves.
    std::vector<int> movable;
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (frozen[g] == 0) movable.push_back(static_cast<int>(g));
    }
    if (static_cast<int>(movable.size()) > options.max_moves) {
      std::vector<double> tension(num_groups, 0.0);
      for (int g : movable) {
        tension[static_cast<std::size_t>(g)] = group_tension(
            context.coarse,
            context.coarse.macro_group_nodes[static_cast<std::size_t>(g)]);
      }
      std::sort(movable.begin(), movable.end(), [&](int a, int b) {
        const double ta = tension[static_cast<std::size_t>(a)];
        const double tb = tension[static_cast<std::size_t>(b)];
        if (ta != tb) return ta > tb;
        return a < b;
      });
      for (std::size_t k = static_cast<std::size_t>(options.max_moves);
           k < movable.size(); ++k) {
        frozen[static_cast<std::size_t>(movable[k])] = 1;
      }
    }
  }
  for (std::size_t g = 0; g < num_groups; ++g) {
    if (frozen[g] != 0) ++result.frozen_groups;
  }
  MP_OBS_GAUGE("regulate.frozen_groups",
               static_cast<double>(result.frozen_groups));

  const int radius = std::max(0, options.radius);
  auto mask = std::make_shared<rl::ActionMask>(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    const cluster::Group& group = clustering.macro_groups[g];
    const grid::CellCoord fp =
        spec.footprint_cells(group.width, group.height);
    const grid::CellCoord inc = incumbent[g];
    std::vector<int>& cells = (*mask)[g];
    if (frozen[g] != 0) {
      cells.push_back(spec.flat_index(inc));
      continue;
    }
    // gy-major, gx-minor iteration emits flat indices already sorted.
    for (int gy = std::max(0, inc.gy - radius);
         gy <= std::min(spec.dim() - fp.gy, inc.gy + radius); ++gy) {
      for (int gx = std::max(0, inc.gx - radius);
           gx <= std::min(spec.dim() - fp.gx, inc.gx + radius); ++gx) {
        cells.push_back(spec.flat_index({gx, gy}));
      }
    }
    if (cells.empty()) cells.push_back(spec.flat_index(inc));
  }

  // --- Fine-tune (short pre-training inside the trust region) -------------
  rl::AgentConfig agent_config = options.agent;
  agent_config.grid_dim = options.flow.grid_dim;
  rl::AgentNetwork agent(agent_config);
  if (!options.initial_parameters.empty()) {
    nn::restore_parameters(agent.parameters(), options.initial_parameters);
  }
  rl::PlacementEnv env(context.coarse, clustering, spec);
  env.set_allowed_actions(mask);
  rl::CoarseEvaluator evaluator(context.coarse, spec);
  evaluator.set_overflow_penalty(options.overflow_penalty);

  util::Timer train_timer;
  {
    MP_OBS_SPAN("rl.train");
    result.train_result = rl::train_agent(env, evaluator, agent, options.train);
  }
  result.train_seconds = train_timer.seconds();
  if (result.train_result.cancelled) {
    result.cancelled = true;
    result.hpwl = baseline_hpwl;
    result.finalized = true;  // the legal input placement is untouched
    result.total_seconds = total_timer.seconds();
    util::log_info() << "regulate_place: cancelled during fine-tuning";
    return result;
  }

  // --- Trust-region MCTS ---------------------------------------------------
  rl::RewardFn reward = options.train.reward;
  if (!reward) {
    reward = result.train_result.calibration.make_reward(options.train.alpha);
  }
  mcts::MctsOptions mcts_options = options.mcts;
  mcts_options.auto_commit_forced = true;
  std::vector<int> incumbent_path;
  incumbent_path.reserve(num_groups);
  for (const grid::CellCoord& c : incumbent) {
    incumbent_path.push_back(spec.flat_index(c));
  }
  mcts_options.seed_paths.push_back(std::move(incumbent_path));
  if (!result.train_result.best_anchors.empty()) {
    std::vector<int> best_path;
    for (const grid::CellCoord& c : result.train_result.best_anchors) {
      best_path.push_back(spec.flat_index(c));
    }
    mcts_options.seed_paths.push_back(std::move(best_path));
  }
  // Prior bias toward the incumbent anchor, on the scale of the trust
  // region (the analytic-guidance bias uses 0.15 * chip width; here the
  // whole action space spans ~radius cells).
  {
    const double temperature = std::max(1, radius) * 0.5 *
                               (spec.cell_width() + spec.cell_height());
    const grid::GridSpec bias_spec = spec;
    std::vector<geometry::Point> targets;
    targets.reserve(num_groups);
    for (const grid::CellCoord& c : incumbent) {
      targets.push_back(bias_spec.cell_rect(c).center());
    }
    mcts_options.prior_bonus = [targets = std::move(targets), bias_spec,
                                temperature](int step, int action) {
      if (step < 0 || step >= static_cast<int>(targets.size())) return 1.0;
      const geometry::Point anchor =
          bias_spec.cell_rect(bias_spec.coord(action)).center();
      const double dist = geometry::manhattan(
          anchor, targets[static_cast<std::size_t>(step)]);
      return std::exp(-dist / temperature) + 1e-4;
    };
  }

  util::Timer mcts_timer;
  {
    MP_OBS_SPAN("mcts.search");
    mcts::MctsPlacer mcts_placer(env, evaluator, agent, reward, mcts_options);
    result.mcts_result = mcts_placer.run();
  }
  result.mcts_seconds = mcts_timer.seconds();
  result.coarse_wirelength = result.mcts_result.wirelength;
  result.cancelled = result.mcts_result.cancelled;

  // --- Touched-region re-legalization + HPWL guarantee ---------------------
  const bool complete =
      static_cast<int>(result.mcts_result.anchors.size()) ==
      result.macro_groups;
  std::vector<std::size_t> moved;
  if (complete) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (!(result.mcts_result.anchors[g] == incumbent[g])) moved.push_back(g);
    }
  }
  result.moved_groups = static_cast<int>(moved.size());
  MP_OBS_GAUGE("regulate.moved_groups",
               static_cast<double>(result.moved_groups));

  double hpwl = baseline_hpwl;
  if (!moved.empty()) {
    // Unlike the from-scratch flows there is no cell re-placement here: the
    // standard cells are part of the incumbent and keep their exact input
    // coordinates, so the realized HPWL is directly comparable to the legal
    // baseline (re-running the cell GP would wipe a converged incumbent
    // cell placement and almost always lose).
    const auto translate_group = [&](std::size_t g) {
      const geometry::Point from = spec.cell_origin(incumbent[g]);
      const geometry::Point to =
          spec.cell_origin(result.mcts_result.anchors[g]);
      const double dx = to.x - from.x;
      const double dy = to.y - from.y;
      for (netlist::NodeId m : clustering.macro_groups[g].members) {
        netlist::Node& node = design.node(m);
        node.position = {node.position.x + dx, node.position.y + dy};
      }
    };
    const auto capture = [&] {
      std::vector<geometry::Point> s;
      s.reserve(design.num_nodes());
      for (std::size_t i = 0; i < design.num_nodes(); ++i) {
        s.push_back(design.node(static_cast<netlist::NodeId>(i)).position);
      }
      return s;
    };
    const auto restore = [&](const std::vector<geometry::Point>& s) {
      for (std::size_t i = 0; i < design.num_nodes(); ++i) {
        design.node(static_cast<netlist::NodeId>(i)).position = s[i];
      }
    };

    // Candidate 1: the search's full rearrangement.  Translate the members
    // of each moved group by its anchor delta, then legalize: legalize_flat
    // only adjusts overlap components, so macros away from the touched
    // region keep their exact input coordinates.
    {
      MP_OBS_SPAN("regulate.legalize");
      for (std::size_t g : moved) translate_group(g);
      legal::legalize_flat(design, options.flow.legalize);
    }
    hpwl = design.total_hpwl();
    if (!(hpwl < baseline_hpwl)) {
      // The joint rearrangement did not survive legalization (the coarse
      // model over-promised).  Fall back to a greedy per-group pass: apply
      // each nudge on its own, in deterministic group order, and keep only
      // the ones that improve the realized HPWL — regulate's contract
      // (HPWL <= the legal input) holds because every accepted step
      // strictly improves and the empty acceptance set is the input itself.
      MP_OBS_COUNT("regulate.rollbacks", 1);
      restore(snapshot);
      hpwl = baseline_hpwl;
      std::vector<geometry::Point> accepted = snapshot;
      std::vector<std::size_t> kept;
      for (std::size_t g : moved) {
        translate_group(g);
        legal::legalize_flat(design, options.flow.legalize);
        const double h = design.total_hpwl();
        if (h < hpwl) {
          hpwl = h;
          kept.push_back(g);
          accepted = capture();
        } else {
          restore(accepted);
        }
      }
      moved = std::move(kept);
      result.moved_groups = static_cast<int>(moved.size());
      MP_OBS_GAUGE("regulate.moved_groups",
                   static_cast<double>(result.moved_groups));
    }
  }
  result.hpwl = hpwl;
  result.finalized = true;
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(result.hpwl, "regulate final HPWL");
    MP_CHECK_LE(result.hpwl, baseline_hpwl + 1e-9 * (1.0 + baseline_hpwl),
                "regulate HPWL exceeds the legal input baseline");
  }
  result.total_seconds = total_timer.seconds();
  util::log_info() << "regulate_place: hpwl=" << result.hpwl << " (input "
                   << result.input_hpwl << ", " << result.moved_groups << "/"
                   << result.macro_groups << " groups moved, "
                   << result.frozen_groups << " frozen, train "
                   << result.train_seconds << "s, mcts "
                   << result.mcts_seconds << "s)"
                   << (result.cancelled ? " [cancelled]" : "");
  MP_OBS_HIST("place.hpwl", result.hpwl);
  MP_OBS_GAUGE("place.coarse_wirelength", result.coarse_wirelength);
  MP_OBS_GAUGE("par.threads", static_cast<double>(par::current_threads()));
  return result;
}

}  // namespace

FlowContext prepare_regulate_flow(const netlist::Design& design,
                                  const FlowOptions& options) {
  MP_OBS_SPAN("flow.prepare_regulate");
  FlowContext context{
      grid::GridSpec(design.region(), options.grid_dim),
      {},
      {},
  };
  MP_OBS_SPAN("flow.clustering");
  context.clustering =
      cluster::cluster_design(design, context.spec, options.cluster);
  context.coarse = cluster::build_coarse_design(design, context.clustering);
  MP_OBS_GAUGE("flow.macro_groups",
               static_cast<double>(context.clustering.macro_groups.size()));
  MP_OBS_GAUGE("flow.cell_groups",
               static_cast<double>(context.clustering.cell_groups.size()));
  return context;
}

namespace detail {

RegulateResult regulate_place_prepared(netlist::Design& design,
                                       FlowContext& context,
                                       const RegulateOptions& options) {
  return regulate_from_context(design, context, propagate_cancel(options));
}

RegulateResult regulate_place(netlist::Design& design,
                              const RegulateOptions& options) {
  if (obs::enabled()) obs::reset_values();
  const RegulateOptions propagated = propagate_cancel(options);
  util::Timer total_timer;
  std::optional<obs::Span> run_span;
  run_span.emplace("regulate_place");

  FlowContext context = prepare_regulate_flow(design, propagated.flow);
  RegulateResult result;
  if (propagated.cancel.cancelled()) {
    result.cancelled = true;
    result.finalized = true;  // input placement untouched
    result.input_hpwl = design.total_hpwl();
    result.hpwl = result.input_hpwl;
    result.macro_groups =
        static_cast<int>(context.clustering.macro_groups.size());
    result.cell_groups =
        static_cast<int>(context.clustering.cell_groups.size());
    util::log_info() << "regulate_place: cancelled during preprocessing";
  } else {
    result = regulate_from_context(design, context, propagated);
  }
  result.total_seconds = total_timer.seconds();
  run_span.reset();
  obs::write_run_report("regulate_place");
  return result;
}

}  // namespace detail

}  // namespace mp::place
