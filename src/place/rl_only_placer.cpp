#include "place/rl_only_placer.hpp"

#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

RlOnlyResult rl_only_place(netlist::Design& design,
                           const MctsRlOptions& options) {
  RlOnlyResult result;
  util::Timer timer;

  FlowContext context = prepare_flow(design, options.flow);
  rl::AgentConfig agent_config = options.agent;
  agent_config.grid_dim = options.flow.grid_dim;
  rl::AgentNetwork agent(agent_config);
  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);

  result.train_result = rl::train_agent(env, evaluator, agent, options.train);

  std::vector<grid::CellCoord> anchors;
  result.coarse_wirelength =
      rl::play_greedy_episode(env, evaluator, agent, anchors);
  // Fall back to the best training-time allocation if the greedy rollout is
  // worse (CT also reports its best seen placement).
  if (!result.train_result.best_anchors.empty() &&
      result.train_result.best_wirelength < result.coarse_wirelength) {
    anchors = result.train_result.best_anchors;
    result.coarse_wirelength = result.train_result.best_wirelength;
  }
  result.hpwl = finalize_placement(design, context, anchors, options.flow);
  result.seconds = timer.seconds();
  util::log_info() << "rl_only_place: hpwl=" << result.hpwl;
  return result;
}

}  // namespace mp::place
