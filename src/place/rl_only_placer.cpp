#include "place/rl_only_placer.hpp"

#include "nn/serialize.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

namespace {

RlOnlyResult place_from_context(netlist::Design& design, FlowContext& context,
                                const MctsRlOptions& options) {
  RlOnlyResult result;
  util::Timer timer;
  result.macro_groups =
      static_cast<int>(context.clustering.macro_groups.size());

  rl::AgentConfig agent_config = options.agent;
  agent_config.grid_dim = options.flow.grid_dim;
  rl::AgentNetwork agent(agent_config);
  if (!options.initial_parameters.empty()) {
    nn::restore_parameters(agent.parameters(), options.initial_parameters);
  }
  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);

  rl::TrainOptions train = options.train;
  if (options.cancel.valid()) train.cancel = options.cancel;
  result.train_result = rl::train_agent(env, evaluator, agent, train);
  if (result.train_result.cancelled) {
    result.cancelled = true;
    result.seconds = timer.seconds();
    util::log_info() << "rl_only_place: cancelled during pre-training";
    return result;
  }

  std::vector<grid::CellCoord> anchors;
  result.coarse_wirelength =
      rl::play_greedy_episode(env, evaluator, agent, anchors);
  // Fall back to the best training-time allocation if the greedy rollout is
  // worse (CT also reports its best seen placement).
  if (!result.train_result.best_anchors.empty() &&
      result.train_result.best_wirelength < result.coarse_wirelength) {
    anchors = result.train_result.best_anchors;
    result.coarse_wirelength = result.train_result.best_wirelength;
  }
  FlowOptions flow = options.flow;
  if (options.cancel.valid()) flow.cancel = options.cancel;
  result.hpwl = finalize_placement(design, context, anchors, flow);
  result.finalized = true;
  result.cancelled = options.cancel.cancelled();
  result.seconds = timer.seconds();
  util::log_info() << "rl_only_place: hpwl=" << result.hpwl;
  return result;
}

}  // namespace

namespace detail {

RlOnlyResult rl_only_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options) {
  return place_from_context(design, context, options);
}

RlOnlyResult rl_only_place(netlist::Design& design,
                           const MctsRlOptions& options) {
  util::Timer timer;
  FlowOptions flow = options.flow;
  if (options.cancel.valid()) flow.cancel = options.cancel;
  FlowContext context = prepare_flow(design, flow);
  if (options.cancel.cancelled()) {
    RlOnlyResult result;
    result.cancelled = true;
    result.seconds = timer.seconds();
    util::log_info() << "rl_only_place: cancelled during preprocessing";
    return result;
  }
  RlOnlyResult result = place_from_context(design, context, options);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace detail

}  // namespace mp::place
