#pragma once
// The paper's placer (Algorithm 1): preprocessing → RL pre-training →
// MCTS placement optimization → macro legalization → cell placement.
//
// Unified entry point — and the only public one: build a PlacerSpec (by
// hand, or from a preset name + knob set via spec_from_preset) and call
// place::run().  One facade covers all six flows — the paper's MCTS flow,
// the RL-only ablation, the SA / wiremask / analytic baselines, and the
// incremental regulate flow (place/regulate_placer.hpp) — plus the
// warm-start path on an already-prepared flow context.  The per-flow
// functions live in place::detail and are implementation plumbing, not API
// (docs/API.md).

#include <cstdint>
#include <string>
#include <vector>

#include "mcts/mcts.hpp"
#include "place/analytic_placer.hpp"
#include "place/flow.hpp"
#include "place/regulate_placer.hpp"
#include "place/sa_placer.hpp"
#include "place/wiremask_placer.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::place {

struct MctsRlOptions {
  FlowOptions flow;
  rl::AgentConfig agent = [] {
    rl::AgentConfig c;
    // CPU-budget default; the paper's configuration is channels=128,
    // res_blocks=10 (pass those for full fidelity).
    c.channels = 32;
    c.res_blocks = 3;
    return c;
  }();
  rl::TrainOptions train;
  /// Search options.  `mcts.infer_engine` may point at a shared
  /// infer::InferenceEngine (docs/INFERENCE.md) — the service sets it so
  /// concurrent jobs coalesce their value-network forwards; placements are
  /// bit-identical with or without it.
  mcts::MctsOptions mcts;
  /// Warm-start the MCTS with the allocation induced by the initial
  /// analytical placement and the best training episode, and bias expansion
  /// priors toward each group's analytical position.  This stands in for the
  /// prior knowledge a fully pre-trained agent provides (the paper trains
  /// 3-10 h on GPU); set false for the paper's pure-π_θ search.
  bool analytic_guidance = true;
  /// Greedy post-pass on the MCTS allocation: each round tries moving every
  /// group to its 8 neighboring anchor cells, keeping strict improvements of
  /// the evaluated wirelength.  Off by default: near its optimum the coarse
  /// proxy anti-correlates with post-legalization HPWL (see the ablation
  /// bench), so climbing it further tends to over-pack groups.
  int hill_climb_rounds = 0;
  /// Density term of the in-loop evaluator (CoarseEvaluator::
  /// set_overflow_penalty); keeps the coarse objective aligned with what the
  /// legalizer can realize.  0 = the paper's pure-HPWL reward.
  double overflow_penalty = 0.0;
  /// Pre-trained parameters restored into the freshly constructed agent
  /// before training (the paper's pre-trained-policy setting; also the
  /// service weights cache, src/svc/cache.hpp).  Shapes must match the
  /// agent config; empty keeps the random initialization.
  std::vector<nn::Tensor> initial_parameters;
  /// Cooperative cancellation for the whole flow: when valid, it is
  /// propagated into flow/train/mcts before running, and the flow stops at
  /// the next stage or iteration boundary with MctsRlResult::cancelled set.
  /// The design is always left with finite positions; when the search had
  /// already produced a complete allocation it is legalized as usual, so a
  /// cancelled run may still end in a fully legal placement.
  util::CancelToken cancel;
};

struct MctsRlResult {
  double hpwl = 0.0;             ///< final measured HPWL (Sec. II-C)
  double coarse_wirelength = 0.0;///< MCTS allocation wirelength (coarse model)
  double train_seconds = 0.0;
  double mcts_seconds = 0.0;
  double total_seconds = 0.0;
  int macro_groups = 0;
  int cell_groups = 0;
  rl::TrainResult train_result;
  mcts::MctsResult mcts_result;
  bool cancelled = false;   ///< stopped early via MctsRlOptions::cancel
  bool finalized = false;   ///< legalization + cell placement completed
};

// --- Unified placer API ---

/// Which placement flow to run.  Canonical names (preset_name): mcts,
/// rl_only, sa, wiremask, analytic, regulate.
enum class Preset {
  kMcts,      ///< the paper's flow (RL pre-training + MCTS); alias "ours"
  kRlOnly,    ///< CT-style greedy policy rollout; alias "rl"
  kSa,        ///< simulated-annealing baseline
  kWiremask,  ///< MaskPlace-style greedy baseline
  kAnalytic,  ///< mixed-size analytical baseline
  kRegulate,  ///< incremental/ECO trust-region refinement; alias "eco"
};

const char* preset_name(Preset preset);

/// One row of the shared preset-name table: a spelling every front end
/// (place_bookshelf flags, service JSON jobs, mp_submit) accepts.
/// `canonical` marks the preset_name() spelling.
struct PresetAlias {
  const char* name;
  Preset preset;
  bool canonical;
};

/// The full canonical-plus-alias name table, canonical spelling first per
/// preset.  parse_preset and the service job parser both resolve names
/// through this table — there is exactly one copy of the accepted name set,
/// and tests enumerate it rather than hard-coding spellings.
const std::vector<PresetAlias>& preset_aliases();

/// Accepts every spelling in preset_aliases().  Returns false (out
/// untouched) on anything else.
bool parse_preset(const std::string& name, Preset& out);

/// The knob set every front end exposes (place_bookshelf flags, service
/// JobSpec fields).  Defaults are the CPU-budget CLI defaults.
struct PresetKnobs {
  int episodes = 60;   ///< RL pre-training episodes
  int gamma = 24;      ///< MCTS explorations per move
  int grid = 16;       ///< ζ — grid dimension
  int channels = 24;   ///< agent tower width
  int blocks = 2;      ///< agent tower depth
  /// 0 keeps every library default seed (bit-identity with fronts that
  /// expose no seed); non-zero overrides the preset's RNG seeds (train /
  /// mcts for the RL flows, the annealer for sa).
  std::uint64_t seed = 0;
  // --- regulate preset only (ignored by the from-scratch flows) ---
  int regulate_radius = 2;     ///< trust-region Chebyshev cell radius
  int regulate_max_moves = 0;  ///< cap on moved groups; 0 = unbounded
  std::vector<std::string> regulate_frozen;  ///< macro names pinned in place
};

/// Everything place::run needs: the preset selector plus the option struct
/// for each flow (only the selected one is read).  Build by hand for full
/// control, or with spec_from_preset for the shared front-end derivation.
struct PlacerSpec {
  Preset preset = Preset::kMcts;
  MctsRlOptions mcts_rl;   ///< kMcts and kRlOnly (mcts member ignored by rl)
  SaOptions sa;
  WiremaskOptions wiremask;
  AnalyticOptions analytic;
  RegulateOptions regulate;
  /// Cooperative cancellation: when valid, propagated into the selected
  /// flow's own cancel points before running (the whole RL/MCTS/regulate
  /// flow; the GP stages of the baselines, whose core loops run to
  /// completion).
  util::CancelToken cancel;
};

/// The one preset → options derivation shared by the CLI, the service and
/// the benches, so all fronts get byte-identical option structs (the
/// bit-identity contract between place_bookshelf and service jobs hangs on
/// there being exactly one copy of this logic).
PlacerSpec spec_from_preset(Preset preset, const PresetKnobs& knobs = {});

/// Reusable preprocessing (Algorithm 1 lines 1-2) for the RL flows: capture
/// after prepare_flow() (or prepare_regulate_flow() for kRegulate) and pass
/// to run() to skip clustering + initial GP — the warm-artifact path of the
/// placement service.  `context.spec` must match the spec's flow.grid_dim,
/// and the design passed to run() must hold the placement that produced the
/// context (the initial GP result for the from-scratch flows, the incumbent
/// placement for kRegulate).  Ignored by the baseline presets (they place
/// from the raw design).
struct PreparedFlow {
  FlowContext context;
};

/// Preset-independent result summary.  The flow-specific block after
/// `finalized` is filled only by the flow that produced it and keeps its
/// zero default otherwise — one flat struct instead of five result types,
/// so callers of run() never need the per-flow entry points.
struct PlaceResult {
  double hpwl = 0.0;
  double coarse_wirelength = 0.0;  ///< RL flows only (0 for baselines)
  double seconds = 0.0;
  int macro_groups = 0;            ///< RL flows only (0 for baselines)
  int cell_groups = 0;             ///< RL flows only (0 for baselines)
  bool cancelled = false;
  bool finalized = true;           ///< legalization + cell placement ran
  // --- RL flows (kMcts, kRlOnly, kRegulate) ---
  double train_seconds = 0.0;
  double mcts_seconds = 0.0;       ///< kMcts and kRegulate
  rl::TrainResult train_result;
  mcts::MctsResult mcts_result;    ///< kMcts and kRegulate
  // --- kRegulate ---
  double input_hpwl = 0.0;   ///< HPWL of the incumbent placement as received
  int moved_groups = 0;      ///< groups re-anchored inside the trust region
  int frozen_groups = 0;     ///< groups pinned by regulate.frozen/max_moves
  // --- baselines ---
  double sa_accept_ratio = 0.0;
  double sa_final_cost = 0.0;
  long long wiremask_candidates = 0;
  double analytic_mixed_overflow = 0.0;
};

/// Runs the selected flow in place; `design` ends up fully placed (and
/// legal, unless cancelled before a complete allocation existed).  With a
/// PreparedFlow, the RL flows skip preprocessing and are bit-identical to
/// the cold path at equal options.  Telemetry: the cold RL flows own a run
/// window (reset + JSONL report); pass prepared (or wrap in an
/// obs::ScopedContext) when the caller owns the window.
PlaceResult run(netlist::Design& design, const PlacerSpec& spec,
                PreparedFlow* prepared = nullptr);

namespace detail {

/// Per-flow plumbing behind run() — kept callable for the implementation
/// files and white-box tests, but not part of the public API surface
/// (docs/API.md documents run()/PlacerSpec only).
MctsRlResult mcts_rl_place(netlist::Design& design,
                           const MctsRlOptions& options = {});

/// Runs the flow on an already-prepared context (Algorithm 1 lines 3-16):
/// `design` must hold the initial placement that produced `context`.  Skips
/// the obs run-report window management of mcts_rl_place (the caller owns
/// the telemetry window); results are bit-identical to a cold mcts_rl_place
/// at the same options.  options.flow.grid_dim must match context.spec.
MctsRlResult mcts_rl_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options = {});

}  // namespace detail

}  // namespace mp::place
