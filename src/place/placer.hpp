#pragma once
// The paper's placer (Algorithm 1): preprocessing → RL pre-training →
// MCTS placement optimization → macro legalization → cell placement.

#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::place {

struct MctsRlOptions {
  FlowOptions flow;
  rl::AgentConfig agent = [] {
    rl::AgentConfig c;
    // CPU-budget default; the paper's configuration is channels=128,
    // res_blocks=10 (pass those for full fidelity).
    c.channels = 32;
    c.res_blocks = 3;
    return c;
  }();
  rl::TrainOptions train;
  mcts::MctsOptions mcts;
  /// Warm-start the MCTS with the allocation induced by the initial
  /// analytical placement and the best training episode, and bias expansion
  /// priors toward each group's analytical position.  This stands in for the
  /// prior knowledge a fully pre-trained agent provides (the paper trains
  /// 3-10 h on GPU); set false for the paper's pure-π_θ search.
  bool analytic_guidance = true;
  /// Greedy post-pass on the MCTS allocation: each round tries moving every
  /// group to its 8 neighboring anchor cells, keeping strict improvements of
  /// the evaluated wirelength.  Off by default: near its optimum the coarse
  /// proxy anti-correlates with post-legalization HPWL (see the ablation
  /// bench), so climbing it further tends to over-pack groups.
  int hill_climb_rounds = 0;
  /// Density term of the in-loop evaluator (CoarseEvaluator::
  /// set_overflow_penalty); keeps the coarse objective aligned with what the
  /// legalizer can realize.  0 = the paper's pure-HPWL reward.
  double overflow_penalty = 0.0;
};

struct MctsRlResult {
  double hpwl = 0.0;             ///< final measured HPWL (Sec. II-C)
  double coarse_wirelength = 0.0;///< MCTS allocation wirelength (coarse model)
  double train_seconds = 0.0;
  double mcts_seconds = 0.0;
  double total_seconds = 0.0;
  int macro_groups = 0;
  int cell_groups = 0;
  rl::TrainResult train_result;
  mcts::MctsResult mcts_result;
};

/// Runs the full flow in place; `design` ends up fully placed and legal.
MctsRlResult mcts_rl_place(netlist::Design& design,
                           const MctsRlOptions& options = {});

}  // namespace mp::place
