#pragma once
// The paper's placer (Algorithm 1): preprocessing → RL pre-training →
// MCTS placement optimization → macro legalization → cell placement.

#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::place {

struct MctsRlOptions {
  FlowOptions flow;
  rl::AgentConfig agent = [] {
    rl::AgentConfig c;
    // CPU-budget default; the paper's configuration is channels=128,
    // res_blocks=10 (pass those for full fidelity).
    c.channels = 32;
    c.res_blocks = 3;
    return c;
  }();
  rl::TrainOptions train;
  mcts::MctsOptions mcts;
  /// Warm-start the MCTS with the allocation induced by the initial
  /// analytical placement and the best training episode, and bias expansion
  /// priors toward each group's analytical position.  This stands in for the
  /// prior knowledge a fully pre-trained agent provides (the paper trains
  /// 3-10 h on GPU); set false for the paper's pure-π_θ search.
  bool analytic_guidance = true;
  /// Greedy post-pass on the MCTS allocation: each round tries moving every
  /// group to its 8 neighboring anchor cells, keeping strict improvements of
  /// the evaluated wirelength.  Off by default: near its optimum the coarse
  /// proxy anti-correlates with post-legalization HPWL (see the ablation
  /// bench), so climbing it further tends to over-pack groups.
  int hill_climb_rounds = 0;
  /// Density term of the in-loop evaluator (CoarseEvaluator::
  /// set_overflow_penalty); keeps the coarse objective aligned with what the
  /// legalizer can realize.  0 = the paper's pure-HPWL reward.
  double overflow_penalty = 0.0;
  /// Pre-trained parameters restored into the freshly constructed agent
  /// before training (the paper's pre-trained-policy setting; also the
  /// service weights cache, src/svc/cache.hpp).  Shapes must match the
  /// agent config; empty keeps the random initialization.
  std::vector<nn::Tensor> initial_parameters;
  /// Cooperative cancellation for the whole flow: when valid, it is
  /// propagated into flow/train/mcts before running, and the flow stops at
  /// the next stage or iteration boundary with MctsRlResult::cancelled set.
  /// The design is always left with finite positions; when the search had
  /// already produced a complete allocation it is legalized as usual, so a
  /// cancelled run may still end in a fully legal placement.
  util::CancelToken cancel;
};

struct MctsRlResult {
  double hpwl = 0.0;             ///< final measured HPWL (Sec. II-C)
  double coarse_wirelength = 0.0;///< MCTS allocation wirelength (coarse model)
  double train_seconds = 0.0;
  double mcts_seconds = 0.0;
  double total_seconds = 0.0;
  int macro_groups = 0;
  int cell_groups = 0;
  rl::TrainResult train_result;
  mcts::MctsResult mcts_result;
  bool cancelled = false;   ///< stopped early via MctsRlOptions::cancel
  bool finalized = false;   ///< legalization + cell placement completed
};

/// Runs the full flow in place; `design` ends up fully placed and legal.
MctsRlResult mcts_rl_place(netlist::Design& design,
                           const MctsRlOptions& options = {});

/// Runs the flow on an already-prepared context (Algorithm 1 lines 3-16):
/// `design` must hold the initial placement that produced `context` — e.g. a
/// warm-cache copy captured after prepare_flow (src/svc/cache.hpp).  Skips
/// the obs run-report window management of mcts_rl_place (the caller owns
/// the telemetry window); results are bit-identical to a cold mcts_rl_place
/// at the same options.  options.flow.grid_dim must match context.spec.
MctsRlResult mcts_rl_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options = {});

}  // namespace mp::place
