#include "place/analytic_placer.hpp"

#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

namespace detail {

AnalyticResult analytic_place(netlist::Design& design,
                              const AnalyticOptions& options) {
  AnalyticResult result;
  util::Timer timer;
  const gp::GlobalPlaceResult mixed = gp::global_place(design, options.mixed_gp);
  result.mixed_overflow = mixed.overflow_ratio;
  legal::legalize_flat(design, options.legalize);
  result.hpwl = place_cells_and_measure(design, options.final_gp);
  result.seconds = timer.seconds();
  util::log_info() << "analytic_place: hpwl=" << result.hpwl;
  return result;
}

}  // namespace detail

}  // namespace mp::place
