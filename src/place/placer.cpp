#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/rl_only_placer.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

namespace {

// A valid top-level token overrides the per-stage tokens, so one token
// cancels the whole flow regardless of which stage is running.
MctsRlOptions propagate_cancel(const MctsRlOptions& options) {
  if (!options.cancel.valid()) return options;
  MctsRlOptions o = options;
  o.flow.cancel = o.cancel;
  o.train.cancel = o.cancel;
  o.mcts.cancel = o.cancel;
  return o;
}

// Algorithm 1 lines 3-16 on a prepared context.  Owns no telemetry window;
// `options` must already have cancel propagated.
MctsRlResult place_from_context(netlist::Design& design, FlowContext& context,
                                const MctsRlOptions& options) {
  MctsRlResult result;
  util::Timer total_timer;
  result.macro_groups = static_cast<int>(context.clustering.macro_groups.size());
  result.cell_groups = static_cast<int>(context.clustering.cell_groups.size());

  // --- RL pre-training (lines 3-10) ---
  rl::AgentConfig agent_config = options.agent;
  agent_config.grid_dim = options.flow.grid_dim;
  rl::AgentNetwork agent(agent_config);
  if (!options.initial_parameters.empty()) {
    nn::restore_parameters(agent.parameters(), options.initial_parameters);
  }
  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);
  evaluator.set_overflow_penalty(options.overflow_penalty);

  util::Timer train_timer;
  {
    MP_OBS_SPAN("rl.train");
    result.train_result = rl::train_agent(env, evaluator, agent, options.train);
  }
  result.train_seconds = train_timer.seconds();
  if (result.train_result.cancelled) {
    result.cancelled = true;
    result.total_seconds = total_timer.seconds();
    util::log_info() << "mcts_rl_place: cancelled during pre-training";
    return result;
  }

  // --- MCTS placement optimization (lines 11-15) ---
  rl::RewardFn reward = options.train.reward;
  if (!reward) {
    reward = result.train_result.calibration.make_reward(options.train.alpha);
  }
  mcts::MctsOptions mcts_options = options.mcts;
  if (options.analytic_guidance) {
    // Anchor suggestion per group from the initial analytical placement
    // (the clustering centroids), clamped so the footprint stays on-chip.
    std::vector<int> analytic_path;
    std::vector<geometry::Point> targets;
    for (const cluster::Group& group : context.clustering.macro_groups) {
      const grid::CellCoord fp =
          context.spec.footprint_cells(group.width, group.height);
      grid::CellCoord c = context.spec.cell_of(
          {group.centroid.x - group.width / 2.0,
           group.centroid.y - group.height / 2.0});
      c.gx = std::min(c.gx, context.spec.dim() - fp.gx);
      c.gy = std::min(c.gy, context.spec.dim() - fp.gy);
      analytic_path.push_back(context.spec.flat_index(c));
      targets.push_back(group.centroid);
    }
    mcts_options.seed_paths.push_back(std::move(analytic_path));
    if (!result.train_result.best_anchors.empty()) {
      std::vector<int> best_path;
      for (const grid::CellCoord& c : result.train_result.best_anchors) {
        best_path.push_back(context.spec.flat_index(c));
      }
      mcts_options.seed_paths.push_back(std::move(best_path));
    }
    // Prior bias: prefer anchors near the group's analytical position.
    const double temperature = 0.15 * design.region().w;
    const grid::GridSpec spec = context.spec;
    mcts_options.prior_bonus = [targets, spec, temperature](int step,
                                                            int action) {
      if (step < 0 || step >= static_cast<int>(targets.size())) return 1.0;
      const geometry::Point anchor =
          spec.cell_rect(spec.coord(action)).center();
      const double dist = geometry::manhattan(anchor,
                                              targets[static_cast<std::size_t>(step)]);
      return std::exp(-dist / temperature) + 1e-4;
    };
  }
  util::Timer mcts_timer;
  std::optional<obs::Span> mcts_span;
  mcts_span.emplace("mcts.search");
  mcts::MctsPlacer mcts_placer(env, evaluator, agent, reward, mcts_options);
  result.mcts_result = mcts_placer.run();
  result.coarse_wirelength = result.mcts_result.wirelength;
  result.cancelled = result.mcts_result.cancelled;

  // Greedy anchor hill-climb on the coarse objective (placer extension; see
  // MctsRlOptions::hill_climb_rounds).
  if (options.hill_climb_rounds > 0 && !result.cancelled &&
      !result.mcts_result.anchors.empty()) {
    MP_OBS_SPAN("mcts.hill_climb");
    std::vector<grid::CellCoord> anchors = result.mcts_result.anchors;
    double best = result.coarse_wirelength;
    const int dim = context.spec.dim();
    for (int round = 0; round < options.hill_climb_rounds; ++round) {
      bool improved = false;
      for (std::size_t g = 0; g < anchors.size(); ++g) {
        const cluster::Group& group = context.clustering.macro_groups[g];
        const grid::CellCoord fp =
            context.spec.footprint_cells(group.width, group.height);
        const grid::CellCoord original = anchors[g];
        grid::CellCoord best_anchor = original;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const grid::CellCoord candidate{original.gx + dx, original.gy + dy};
            if (candidate.gx < 0 || candidate.gy < 0 ||
                candidate.gx + fp.gx > dim || candidate.gy + fp.gy > dim) {
              continue;
            }
            anchors[g] = candidate;
            const double w = evaluator.evaluate(anchors);
            if (w < best) {
              best = w;
              best_anchor = candidate;
              improved = true;
            }
          }
        }
        anchors[g] = best_anchor;
      }
      if (!improved) break;
    }
    if (best < result.coarse_wirelength) {
      result.mcts_result.anchors = anchors;
      result.coarse_wirelength = best;
      result.mcts_result.wirelength = best;
      result.mcts_result.reward = reward(best);
    }
  }
  mcts_span.reset();
  result.mcts_seconds = mcts_timer.seconds();

  // --- Legalization + cell placement (line 16) ---
  // A cancelled search may still have found a complete allocation (best
  // terminal leaf, seed line); legalize it so the design ends legal even
  // then.  Only a cancelled search with an incomplete allocation skips
  // finalize — positions then remain at the (finite) initial placement.
  const bool complete_allocation =
      static_cast<int>(result.mcts_result.anchors.size()) ==
      result.macro_groups;
  if (complete_allocation) {
    result.hpwl = finalize_placement(design, context,
                                     result.mcts_result.anchors, options.flow);
    result.finalized = true;
  }
  result.total_seconds = total_timer.seconds();
  util::log_info() << "mcts_rl_place: hpwl=" << result.hpwl << " ("
                   << result.macro_groups << " macro groups, train "
                   << result.train_seconds << "s, mcts "
                   << result.mcts_seconds << "s)"
                   << (result.cancelled ? " [cancelled]" : "");
  MP_OBS_HIST("place.hpwl", result.hpwl);
  MP_OBS_GAUGE("place.coarse_wirelength", result.coarse_wirelength);
  MP_OBS_GAUGE("par.threads", static_cast<double>(par::current_threads()));
  return result;
}

}  // namespace

MctsRlResult mcts_rl_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options) {
  return place_from_context(design, context, propagate_cancel(options));
}

MctsRlResult mcts_rl_place(netlist::Design& design,
                           const MctsRlOptions& options) {
  // Each run owns one telemetry window: the registry is zeroed up front and
  // serialized as one JSONL line at the end (MP_OBS_OUT; no-op when unset).
  if (obs::enabled()) obs::reset_values();
  const MctsRlOptions propagated = propagate_cancel(options);
  util::Timer total_timer;
  // optional<> so the root span can close before the report is serialized.
  std::optional<obs::Span> run_span;
  run_span.emplace("mcts_rl_place");

  // --- Preprocessing (Algorithm 1, lines 1-2) ---
  FlowContext context = prepare_flow(design, propagated.flow);
  MctsRlResult result;
  if (propagated.cancel.cancelled()) {
    result.cancelled = true;
    result.macro_groups =
        static_cast<int>(context.clustering.macro_groups.size());
    result.cell_groups = static_cast<int>(context.clustering.cell_groups.size());
    util::log_info() << "mcts_rl_place: cancelled during preprocessing";
  } else {
    result = place_from_context(design, context, propagated);
  }
  result.total_seconds = total_timer.seconds();
  run_span.reset();
  obs::write_run_report("mcts_rl_place");
  return result;
}

// --- Unified placer API ---

const char* preset_name(Preset preset) {
  switch (preset) {
    case Preset::kMcts: return "mcts";
    case Preset::kRlOnly: return "rl_only";
    case Preset::kSa: return "sa";
    case Preset::kWiremask: return "wiremask";
    case Preset::kAnalytic: return "analytic";
  }
  return "mcts";
}

bool parse_preset(const std::string& name, Preset& out) {
  if (name == "mcts" || name == "ours") {
    out = Preset::kMcts;
  } else if (name == "rl_only" || name == "rl") {
    out = Preset::kRlOnly;
  } else if (name == "sa") {
    out = Preset::kSa;
  } else if (name == "wiremask") {
    out = Preset::kWiremask;
  } else if (name == "analytic") {
    out = Preset::kAnalytic;
  } else {
    return false;
  }
  return true;
}

PlacerSpec spec_from_preset(Preset preset, const PresetKnobs& knobs) {
  PlacerSpec spec;
  spec.preset = preset;
  spec.mcts_rl.flow.grid_dim = knobs.grid;
  spec.mcts_rl.agent.channels = knobs.channels;
  spec.mcts_rl.agent.res_blocks = knobs.blocks;
  spec.mcts_rl.train.episodes = knobs.episodes;
  spec.mcts_rl.train.update_window =
      std::min(30, std::max(3, knobs.episodes / 6));
  spec.mcts_rl.train.calibration_episodes = std::max(5, knobs.episodes / 3);
  spec.mcts_rl.mcts.explorations_per_move = knobs.gamma;
  if (knobs.seed != 0) {
    spec.mcts_rl.train.seed = knobs.seed;
    spec.mcts_rl.mcts.seed = knobs.seed + 1;
    spec.sa.seed = knobs.seed;
  }
  return spec;
}

PlaceResult run(netlist::Design& design, const PlacerSpec& spec,
                PreparedFlow* prepared) {
  PlaceResult result;
  util::Timer timer;
  switch (spec.preset) {
    case Preset::kMcts: {
      MctsRlOptions o = spec.mcts_rl;
      if (spec.cancel.valid()) o.cancel = spec.cancel;
      const MctsRlResult r =
          prepared != nullptr
              ? mcts_rl_place_prepared(design, prepared->context, o)
              : mcts_rl_place(design, o);
      result.hpwl = r.hpwl;
      result.coarse_wirelength = r.coarse_wirelength;
      result.macro_groups = r.macro_groups;
      result.cancelled = r.cancelled;
      result.finalized = r.finalized;
      break;
    }
    case Preset::kRlOnly: {
      MctsRlOptions o = spec.mcts_rl;
      if (spec.cancel.valid()) o.cancel = spec.cancel;
      const RlOnlyResult r =
          prepared != nullptr
              ? rl_only_place_prepared(design, prepared->context, o)
              : rl_only_place(design, o);
      result.hpwl = r.hpwl;
      result.coarse_wirelength = r.coarse_wirelength;
      result.macro_groups = r.macro_groups;
      result.cancelled = r.cancelled;
      result.finalized = r.finalized;
      break;
    }
    case Preset::kSa: {
      SaOptions o = spec.sa;
      // Baselines honor cancellation during their GP stages only; the core
      // annealer/greedy loops run to completion.
      if (spec.cancel.valid()) o.initial_gp.cancel = spec.cancel;
      result.hpwl = sa_place(design, o).hpwl;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
    case Preset::kWiremask: {
      WiremaskOptions o = spec.wiremask;
      if (spec.cancel.valid()) o.initial_gp.cancel = spec.cancel;
      result.hpwl = wiremask_place(design, o).hpwl;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
    case Preset::kAnalytic: {
      AnalyticOptions o = spec.analytic;
      if (spec.cancel.valid()) o.mixed_gp.cancel = spec.cancel;
      result.hpwl = analytic_place(design, o).hpwl;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mp::place
