#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/rl_only_placer.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::place {

namespace {

// A valid top-level token overrides the per-stage tokens, so one token
// cancels the whole flow regardless of which stage is running.
MctsRlOptions propagate_cancel(const MctsRlOptions& options) {
  if (!options.cancel.valid()) return options;
  MctsRlOptions o = options;
  o.flow.cancel = o.cancel;
  o.train.cancel = o.cancel;
  o.mcts.cancel = o.cancel;
  return o;
}

// Algorithm 1 lines 3-16 on a prepared context.  Owns no telemetry window;
// `options` must already have cancel propagated.
MctsRlResult place_from_context(netlist::Design& design, FlowContext& context,
                                const MctsRlOptions& options) {
  MctsRlResult result;
  util::Timer total_timer;
  result.macro_groups = static_cast<int>(context.clustering.macro_groups.size());
  result.cell_groups = static_cast<int>(context.clustering.cell_groups.size());

  // --- RL pre-training (lines 3-10) ---
  rl::AgentConfig agent_config = options.agent;
  agent_config.grid_dim = options.flow.grid_dim;
  rl::AgentNetwork agent(agent_config);
  if (!options.initial_parameters.empty()) {
    nn::restore_parameters(agent.parameters(), options.initial_parameters);
  }
  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);
  evaluator.set_overflow_penalty(options.overflow_penalty);

  util::Timer train_timer;
  {
    MP_OBS_SPAN("rl.train");
    result.train_result = rl::train_agent(env, evaluator, agent, options.train);
  }
  result.train_seconds = train_timer.seconds();
  if (result.train_result.cancelled) {
    result.cancelled = true;
    result.total_seconds = total_timer.seconds();
    util::log_info() << "mcts_rl_place: cancelled during pre-training";
    return result;
  }

  // --- MCTS placement optimization (lines 11-15) ---
  rl::RewardFn reward = options.train.reward;
  if (!reward) {
    reward = result.train_result.calibration.make_reward(options.train.alpha);
  }
  mcts::MctsOptions mcts_options = options.mcts;
  if (options.analytic_guidance) {
    // Anchor suggestion per group from the initial analytical placement
    // (the clustering centroids), clamped so the footprint stays on-chip.
    std::vector<int> analytic_path;
    std::vector<geometry::Point> targets;
    for (const cluster::Group& group : context.clustering.macro_groups) {
      const grid::CellCoord fp =
          context.spec.footprint_cells(group.width, group.height);
      grid::CellCoord c = context.spec.cell_of(
          {group.centroid.x - group.width / 2.0,
           group.centroid.y - group.height / 2.0});
      c.gx = std::min(c.gx, context.spec.dim() - fp.gx);
      c.gy = std::min(c.gy, context.spec.dim() - fp.gy);
      analytic_path.push_back(context.spec.flat_index(c));
      targets.push_back(group.centroid);
    }
    mcts_options.seed_paths.push_back(std::move(analytic_path));
    if (!result.train_result.best_anchors.empty()) {
      std::vector<int> best_path;
      for (const grid::CellCoord& c : result.train_result.best_anchors) {
        best_path.push_back(context.spec.flat_index(c));
      }
      mcts_options.seed_paths.push_back(std::move(best_path));
    }
    // Prior bias: prefer anchors near the group's analytical position.
    const double temperature = 0.15 * design.region().w;
    const grid::GridSpec spec = context.spec;
    mcts_options.prior_bonus = [targets, spec, temperature](int step,
                                                            int action) {
      if (step < 0 || step >= static_cast<int>(targets.size())) return 1.0;
      const geometry::Point anchor =
          spec.cell_rect(spec.coord(action)).center();
      const double dist = geometry::manhattan(anchor,
                                              targets[static_cast<std::size_t>(step)]);
      return std::exp(-dist / temperature) + 1e-4;
    };
  }
  util::Timer mcts_timer;
  std::optional<obs::Span> mcts_span;
  mcts_span.emplace("mcts.search");
  mcts::MctsPlacer mcts_placer(env, evaluator, agent, reward, mcts_options);
  result.mcts_result = mcts_placer.run();
  result.coarse_wirelength = result.mcts_result.wirelength;
  result.cancelled = result.mcts_result.cancelled;

  // Greedy anchor hill-climb on the coarse objective (placer extension; see
  // MctsRlOptions::hill_climb_rounds).
  if (options.hill_climb_rounds > 0 && !result.cancelled &&
      !result.mcts_result.anchors.empty()) {
    MP_OBS_SPAN("mcts.hill_climb");
    std::vector<grid::CellCoord> anchors = result.mcts_result.anchors;
    double best = result.coarse_wirelength;
    const int dim = context.spec.dim();
    for (int round = 0; round < options.hill_climb_rounds; ++round) {
      bool improved = false;
      for (std::size_t g = 0; g < anchors.size(); ++g) {
        const cluster::Group& group = context.clustering.macro_groups[g];
        const grid::CellCoord fp =
            context.spec.footprint_cells(group.width, group.height);
        const grid::CellCoord original = anchors[g];
        grid::CellCoord best_anchor = original;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const grid::CellCoord candidate{original.gx + dx, original.gy + dy};
            if (candidate.gx < 0 || candidate.gy < 0 ||
                candidate.gx + fp.gx > dim || candidate.gy + fp.gy > dim) {
              continue;
            }
            anchors[g] = candidate;
            const double w = evaluator.evaluate(anchors);
            if (w < best) {
              best = w;
              best_anchor = candidate;
              improved = true;
            }
          }
        }
        anchors[g] = best_anchor;
      }
      if (!improved) break;
    }
    if (best < result.coarse_wirelength) {
      result.mcts_result.anchors = anchors;
      result.coarse_wirelength = best;
      result.mcts_result.wirelength = best;
      result.mcts_result.reward = reward(best);
    }
  }
  mcts_span.reset();
  result.mcts_seconds = mcts_timer.seconds();

  // --- Legalization + cell placement (line 16) ---
  // A cancelled search may still have found a complete allocation (best
  // terminal leaf, seed line); legalize it so the design ends legal even
  // then.  Only a cancelled search with an incomplete allocation skips
  // finalize — positions then remain at the (finite) initial placement.
  const bool complete_allocation =
      static_cast<int>(result.mcts_result.anchors.size()) ==
      result.macro_groups;
  if (complete_allocation) {
    result.hpwl = finalize_placement(design, context,
                                     result.mcts_result.anchors, options.flow);
    result.finalized = true;
  }
  result.total_seconds = total_timer.seconds();
  util::log_info() << "mcts_rl_place: hpwl=" << result.hpwl << " ("
                   << result.macro_groups << " macro groups, train "
                   << result.train_seconds << "s, mcts "
                   << result.mcts_seconds << "s)"
                   << (result.cancelled ? " [cancelled]" : "");
  MP_OBS_HIST("place.hpwl", result.hpwl);
  MP_OBS_GAUGE("place.coarse_wirelength", result.coarse_wirelength);
  MP_OBS_GAUGE("par.threads", static_cast<double>(par::current_threads()));
  return result;
}

}  // namespace

namespace detail {

MctsRlResult mcts_rl_place_prepared(netlist::Design& design,
                                    FlowContext& context,
                                    const MctsRlOptions& options) {
  return place_from_context(design, context, propagate_cancel(options));
}

MctsRlResult mcts_rl_place(netlist::Design& design,
                           const MctsRlOptions& options) {
  // Each run owns one telemetry window: the registry is zeroed up front and
  // serialized as one JSONL line at the end (MP_OBS_OUT; no-op when unset).
  if (obs::enabled()) obs::reset_values();
  const MctsRlOptions propagated = propagate_cancel(options);
  util::Timer total_timer;
  // optional<> so the root span can close before the report is serialized.
  std::optional<obs::Span> run_span;
  run_span.emplace("mcts_rl_place");

  // --- Preprocessing (Algorithm 1, lines 1-2) ---
  FlowContext context = prepare_flow(design, propagated.flow);
  MctsRlResult result;
  if (propagated.cancel.cancelled()) {
    result.cancelled = true;
    result.macro_groups =
        static_cast<int>(context.clustering.macro_groups.size());
    result.cell_groups = static_cast<int>(context.clustering.cell_groups.size());
    util::log_info() << "mcts_rl_place: cancelled during preprocessing";
  } else {
    result = place_from_context(design, context, propagated);
  }
  result.total_seconds = total_timer.seconds();
  run_span.reset();
  obs::write_run_report("mcts_rl_place");
  return result;
}

}  // namespace detail

// --- Unified placer API ---

const char* preset_name(Preset preset) {
  for (const PresetAlias& alias : preset_aliases()) {
    if (alias.preset == preset && alias.canonical) return alias.name;
  }
  return "mcts";
}

const std::vector<PresetAlias>& preset_aliases() {
  // The one accepted name set for every front end (CLI flags, JSON jobs,
  // mp_submit).  Canonical spelling first per preset; tests enumerate this
  // table, so extending it here is the whole change for a new alias.
  static const std::vector<PresetAlias> kAliases = {
      {"mcts", Preset::kMcts, true},
      {"ours", Preset::kMcts, false},
      {"rl_only", Preset::kRlOnly, true},
      {"rl", Preset::kRlOnly, false},
      {"sa", Preset::kSa, true},
      {"wiremask", Preset::kWiremask, true},
      {"analytic", Preset::kAnalytic, true},
      {"regulate", Preset::kRegulate, true},
      {"eco", Preset::kRegulate, false},
  };
  return kAliases;
}

bool parse_preset(const std::string& name, Preset& out) {
  for (const PresetAlias& alias : preset_aliases()) {
    if (name == alias.name) {
      out = alias.preset;
      return true;
    }
  }
  return false;
}

PlacerSpec spec_from_preset(Preset preset, const PresetKnobs& knobs) {
  PlacerSpec spec;
  spec.preset = preset;
  spec.mcts_rl.flow.grid_dim = knobs.grid;
  spec.mcts_rl.agent.channels = knobs.channels;
  spec.mcts_rl.agent.res_blocks = knobs.blocks;
  spec.mcts_rl.train.episodes = knobs.episodes;
  spec.mcts_rl.train.update_window =
      std::min(30, std::max(3, knobs.episodes / 6));
  spec.mcts_rl.train.calibration_episodes = std::max(5, knobs.episodes / 3);
  spec.mcts_rl.mcts.explorations_per_move = knobs.gamma;
  // Regulate fine-tunes inside a trust region a fraction of the size of the
  // full action space, so it gets a fraction of the training budget — the
  // core of the regulator economy (runtime < from-scratch mcts at equal
  // knobs; see bench_eco).
  const int regulate_episodes = std::max(4, knobs.episodes / 3);
  spec.regulate.flow.grid_dim = knobs.grid;
  spec.regulate.agent.channels = knobs.channels;
  spec.regulate.agent.res_blocks = knobs.blocks;
  spec.regulate.train.episodes = regulate_episodes;
  spec.regulate.train.update_window =
      std::min(30, std::max(2, regulate_episodes / 6));
  spec.regulate.train.calibration_episodes = std::max(3, regulate_episodes / 3);
  spec.regulate.mcts.explorations_per_move = knobs.gamma;
  spec.regulate.radius = knobs.regulate_radius;
  spec.regulate.max_moves = knobs.regulate_max_moves;
  spec.regulate.frozen = knobs.regulate_frozen;
  if (knobs.seed != 0) {
    spec.mcts_rl.train.seed = knobs.seed;
    spec.mcts_rl.mcts.seed = knobs.seed + 1;
    spec.regulate.train.seed = knobs.seed;
    spec.regulate.mcts.seed = knobs.seed + 1;
    spec.sa.seed = knobs.seed;
  }
  return spec;
}

PlaceResult run(netlist::Design& design, const PlacerSpec& spec,
                PreparedFlow* prepared) {
  PlaceResult result;
  util::Timer timer;
  switch (spec.preset) {
    case Preset::kMcts: {
      MctsRlOptions o = spec.mcts_rl;
      if (spec.cancel.valid()) o.cancel = spec.cancel;
      MctsRlResult r =
          prepared != nullptr
              ? detail::mcts_rl_place_prepared(design, prepared->context, o)
              : detail::mcts_rl_place(design, o);
      result.hpwl = r.hpwl;
      result.coarse_wirelength = r.coarse_wirelength;
      result.macro_groups = r.macro_groups;
      result.cell_groups = r.cell_groups;
      result.cancelled = r.cancelled;
      result.finalized = r.finalized;
      result.train_seconds = r.train_seconds;
      result.mcts_seconds = r.mcts_seconds;
      result.train_result = std::move(r.train_result);
      result.mcts_result = std::move(r.mcts_result);
      break;
    }
    case Preset::kRlOnly: {
      MctsRlOptions o = spec.mcts_rl;
      if (spec.cancel.valid()) o.cancel = spec.cancel;
      RlOnlyResult r =
          prepared != nullptr
              ? detail::rl_only_place_prepared(design, prepared->context, o)
              : detail::rl_only_place(design, o);
      result.hpwl = r.hpwl;
      result.coarse_wirelength = r.coarse_wirelength;
      result.macro_groups = r.macro_groups;
      result.cancelled = r.cancelled;
      result.finalized = r.finalized;
      result.train_result = std::move(r.train_result);
      break;
    }
    case Preset::kSa: {
      SaOptions o = spec.sa;
      // Baselines honor cancellation during their GP stages only; the core
      // annealer/greedy loops run to completion.
      if (spec.cancel.valid()) o.initial_gp.cancel = spec.cancel;
      const SaResult r = detail::sa_place(design, o);
      result.hpwl = r.hpwl;
      result.sa_accept_ratio = r.accept_ratio;
      result.sa_final_cost = r.final_cost;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
    case Preset::kWiremask: {
      WiremaskOptions o = spec.wiremask;
      if (spec.cancel.valid()) o.initial_gp.cancel = spec.cancel;
      const WiremaskResult r = detail::wiremask_place(design, o);
      result.hpwl = r.hpwl;
      result.wiremask_candidates = r.candidates_evaluated;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
    case Preset::kAnalytic: {
      AnalyticOptions o = spec.analytic;
      if (spec.cancel.valid()) o.mixed_gp.cancel = spec.cancel;
      const AnalyticResult r = detail::analytic_place(design, o);
      result.hpwl = r.hpwl;
      result.analytic_mixed_overflow = r.mixed_overflow;
      result.cancelled = spec.cancel.cancelled();
      break;
    }
    case Preset::kRegulate: {
      RegulateOptions o = spec.regulate;
      if (spec.cancel.valid()) o.cancel = spec.cancel;
      RegulateResult r =
          prepared != nullptr
              ? detail::regulate_place_prepared(design, prepared->context, o)
              : detail::regulate_place(design, o);
      result.hpwl = r.hpwl;
      result.coarse_wirelength = r.coarse_wirelength;
      result.macro_groups = r.macro_groups;
      result.cell_groups = r.cell_groups;
      result.cancelled = r.cancelled;
      result.finalized = r.finalized;
      result.train_seconds = r.train_seconds;
      result.mcts_seconds = r.mcts_seconds;
      result.train_result = std::move(r.train_result);
      result.mcts_result = std::move(r.mcts_result);
      result.input_hpwl = r.input_hpwl;
      result.moved_groups = r.moved_groups;
      result.frozen_groups = r.frozen_groups;
      break;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mp::place
