#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "check/check.hpp"

namespace mp::lp {

namespace {
constexpr double kEps = 1e-9;
}

void LinearProgram::set_objective(std::size_t j, double coefficient) {
  assert(j < num_variables_);
  objective_[j] = coefficient;
}

void LinearProgram::add_constraint(std::vector<double> coefficients,
                                   Relation relation, double rhs) {
  assert(coefficients.size() == num_variables_);
  constraints_.push_back(Constraint{std::move(coefficients), relation, rhs});
}

void LinearProgram::add_difference_ge(std::size_t j, std::size_t i, double gap) {
  std::vector<double> row(num_variables_, 0.0);
  row[j] += 1.0;
  row[i] -= 1.0;
  add_constraint(std::move(row), Relation::kGreaterEqual, gap);
}

void LinearProgram::add_upper_bound(std::size_t j, double bound) {
  std::vector<double> row(num_variables_, 0.0);
  row[j] = 1.0;
  add_constraint(std::move(row), Relation::kLessEqual, bound);
}

void LinearProgram::add_lower_bound(std::size_t j, double bound) {
  std::vector<double> row(num_variables_, 0.0);
  row[j] = 1.0;
  add_constraint(std::move(row), Relation::kGreaterEqual, bound);
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
  assert(x.size() == num_variables_);
  double worst = 0.0;
  for (std::size_t j = 0; j < num_variables_; ++j) {
    worst = std::max(worst, -x[j]);  // x >= 0
  }
  for (const Constraint& con : constraints_) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < num_variables_; ++j) {
      lhs += con.coefficients[j] * x[j];
    }
    switch (con.relation) {
      case Relation::kLessEqual:
        worst = std::max(worst, lhs - con.rhs);
        break;
      case Relation::kEqual:
        worst = std::max(worst, std::abs(lhs - con.rhs));
        break;
      case Relation::kGreaterEqual:
        worst = std::max(worst, con.rhs - lhs);
        break;
    }
  }
  return worst;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  assert(x.size() == num_variables_);
  double obj = 0.0;
  for (std::size_t j = 0; j < num_variables_; ++j) obj += objective_[j] * x[j];
  return obj;
}

namespace {

// Tableau layout: columns = [structural | slack/surplus | artificial | rhs].
// Rows = constraints, plus the objective row appended logically (kept as a
// separate vector so phase switching is cheap).
struct Tableau {
  std::size_t rows;
  std::size_t cols;  // total columns including rhs
  std::vector<double> data;
  std::vector<std::size_t> basis;  // basic variable per row

  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    for (std::size_t c = 0; c < cols; ++c) at(pr, c) /= pivot_value;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c < cols; ++c) at(r, c) -= factor * at(pr, c);
    }
    basis[pr] = pc;
  }
};

// One phase of simplex: minimize reduced costs given in `cost` (length =
// structural+slack+artificial columns).  Returns false on iteration limit.
enum class PhaseOutcome { kOptimal, kUnbounded, kIterationLimit };

PhaseOutcome run_phase(Tableau& t, std::vector<double>& cost, double& objective,
                       std::size_t usable_cols, int max_iterations) {
  // `cost` row is maintained in reduced form: cost[c] already accounts for
  // the current basis; objective holds -z.
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Bland's rule: entering column = smallest index with negative reduced cost.
    std::size_t entering = usable_cols;
    for (std::size_t c = 0; c < usable_cols; ++c) {
      if (cost[c] < -kEps) {
        entering = c;
        break;
      }
    }
    if (entering == usable_cols) return PhaseOutcome::kOptimal;

    // Ratio test, Bland tie-break by basis index.
    std::size_t leaving = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows; ++r) {
      const double a = t.at(r, entering);
      if (a > kEps) {
        const double ratio = t.at(r, t.cols - 1) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == t.rows || t.basis[r] < t.basis[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
    }
    if (leaving == t.rows) return PhaseOutcome::kUnbounded;

    t.pivot(leaving, entering);
    // Update the cost row with the same pivot elimination.
    const double factor = cost[entering];
    if (std::abs(factor) > kEps) {
      for (std::size_t c = 0; c < usable_cols; ++c)
        cost[c] -= factor * t.at(leaving, c);
      objective -= factor * t.at(leaving, t.cols - 1);
    }
  }
  return PhaseOutcome::kIterationLimit;
}

}  // namespace

LpResult LinearProgram::solve(int max_iterations) const {
  const std::size_t n = num_variables_;
  const std::size_t m = constraints_.size();

  // Count slack and artificial columns.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const auto& con : constraints_) {
    if (con.relation != Relation::kEqual) ++num_slack;
  }
  // Artificial variables are needed for >= and = rows (after rhs sign fix we
  // conservatively allocate one per row; unneeded ones start non-basic only
  // when a slack can serve as the initial basis).
  std::vector<int> slack_col(m, -1);
  std::vector<int> art_col(m, -1);

  const std::size_t total_structural = n;
  std::size_t next_col = total_structural;

  // First pass: normalize rhs >= 0 and decide columns.
  std::vector<Constraint> cons = constraints_;
  for (auto& con : cons) {
    if (con.rhs < 0.0) {
      for (double& a : con.coefficients) a = -a;
      con.rhs = -con.rhs;
      if (con.relation == Relation::kLessEqual) con.relation = Relation::kGreaterEqual;
      else if (con.relation == Relation::kGreaterEqual) con.relation = Relation::kLessEqual;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (cons[i].relation != Relation::kEqual) slack_col[i] = static_cast<int>(next_col++);
  }
  for (std::size_t i = 0; i < m; ++i) {
    // <= rows get a slack that can be the initial basic variable; >= and =
    // rows need an artificial.
    if (cons[i].relation != Relation::kLessEqual) {
      art_col[i] = static_cast<int>(next_col++);
      ++num_artificial;
    }
  }
  const std::size_t usable_cols = next_col;        // structural+slack+artificial
  const std::size_t total_cols = usable_cols + 1;  // + rhs

  Tableau t;
  t.rows = m;
  t.cols = total_cols;
  t.data.assign(m * total_cols, 0.0);
  t.basis.assign(m, 0);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.at(i, j) = cons[i].coefficients[j];
    if (slack_col[i] >= 0) {
      t.at(i, static_cast<std::size_t>(slack_col[i])) =
          (cons[i].relation == Relation::kLessEqual) ? 1.0 : -1.0;
    }
    if (art_col[i] >= 0) {
      t.at(i, static_cast<std::size_t>(art_col[i])) = 1.0;
      t.basis[i] = static_cast<std::size_t>(art_col[i]);
    } else {
      t.basis[i] = static_cast<std::size_t>(slack_col[i]);
    }
    t.at(i, total_cols - 1) = cons[i].rhs;
  }

  LpResult result;

  // Phase 1: minimize sum of artificials.
  if (num_artificial > 0) {
    std::vector<double> cost(usable_cols, 0.0);
    double objective = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (art_col[i] >= 0) cost[static_cast<std::size_t>(art_col[i])] = 1.0;
    }
    // Reduce cost row against the initial basis (artificials are basic).
    for (std::size_t i = 0; i < m; ++i) {
      if (art_col[i] < 0) continue;
      for (std::size_t c = 0; c < usable_cols; ++c) cost[c] -= t.at(i, c);
      objective -= t.at(i, total_cols - 1);
    }
    const PhaseOutcome outcome =
        run_phase(t, cost, objective, usable_cols, max_iterations);
    if (outcome == PhaseOutcome::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    // objective holds -z; infeasible when the artificial sum is positive.
    if (-objective > 1e-6) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive any artificial still in the basis out (degenerate but possible).
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t b = t.basis[r];
      bool is_artificial = false;
      for (std::size_t i = 0; i < m; ++i) {
        if (art_col[i] >= 0 && static_cast<std::size_t>(art_col[i]) == b)
          is_artificial = true;
      }
      if (!is_artificial) continue;
      bool pivoted = false;
      for (std::size_t c = 0; c < total_structural + num_slack && !pivoted; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          t.pivot(r, c);
          pivoted = true;
        }
      }
      // If no pivot exists the row is redundant (all-zero); leave it.
    }
  }

  // Phase 2: minimize the true objective over structural+slack columns only.
  const std::size_t phase2_cols = total_structural + num_slack;
  {
    std::vector<double> cost(usable_cols, 0.0);
    for (std::size_t j = 0; j < n; ++j) cost[j] = objective_[j];
    // Forbid artificials from re-entering by giving them a huge cost.
    for (std::size_t c = phase2_cols; c < usable_cols; ++c) cost[c] = 1e30;
    double objective = 0.0;
    // Reduce against current basis.
    for (std::size_t r = 0; r < m; ++r) {
      const double cb = cost[t.basis[r]];
      if (std::abs(cb) < kEps) continue;
      for (std::size_t c = 0; c < usable_cols; ++c) cost[c] -= cb * t.at(r, c);
      objective -= cb * t.at(r, total_cols - 1);
    }
    const PhaseOutcome outcome =
        run_phase(t, cost, objective, phase2_cols, max_iterations);
    if (outcome == PhaseOutcome::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    if (outcome == PhaseOutcome::kUnbounded) {
      result.status = LpStatus::kUnbounded;
      return result;
    }
    result.objective = -objective;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) result.x[t.basis[r]] = t.at(r, total_cols - 1);
  }
  // Recompute the objective from the primal solution for numerical sanity.
  result.objective = objective_value(result.x);

  // Feasibility/consistency certificate (MP_VALIDATE_LEVEL >= 1): the point
  // the tableau claims optimal must actually satisfy the original program.
  // Tolerance scales with the constraint data (pivoting magnifies kEps).
  if (check::validate_level() >= 1) {
    double scale = 1.0;
    for (const Constraint& con : constraints_) {
      scale = std::max(scale, std::abs(con.rhs));
      for (double c : con.coefficients) scale = std::max(scale, std::abs(c));
    }
    MP_CHECK_FINITE(result.objective, "LP objective");
    MP_CHECK_LE(max_violation(result.x), 1e-6 * scale * static_cast<double>(m + 1),
                "simplex returned an infeasible \"optimal\" point");
  }
  return result;
}

}  // namespace mp::lp
