#pragma once
// Dense two-phase primal simplex for the small linear programs produced by
// sequence-pair macro legalization (Eq. (3) of the paper, following Tang,
// Tian and Wong, ASP-DAC'05).  Instances have tens of variables (macro
// coordinates inside one grid plus per-net auxiliary wirelength variables),
// so a dense tableau with Bland's anti-cycling rule is both simple and fast.
//
// Problem form:
//   minimize    c^T x
//   subject to  a_i^T x  (<= | = | >=)  b_i      for each constraint i
//               x >= 0
//
// Variables are non-negative; callers with free variables shift them (the
// legalizer shifts by the grid origin, which also keeps numbers small).

#include <vector>

#include "linalg/dense.hpp"

namespace mp::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coefficients;  ///< dense row, length = num variables
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution (valid when status == kOptimal)
};

/// Linear program accumulated row by row.
class LinearProgram {
 public:
  explicit LinearProgram(std::size_t num_variables)
      : num_variables_(num_variables), objective_(num_variables, 0.0) {}

  std::size_t num_variables() const { return num_variables_; }

  /// Sets the objective coefficient of variable `j` (minimization).
  void set_objective(std::size_t j, double coefficient);

  /// Adds a constraint; `coefficients` must have one entry per variable.
  void add_constraint(std::vector<double> coefficients, Relation relation,
                      double rhs);

  /// Convenience: adds  x[j] - x[i] >= gap  (difference constraint).
  void add_difference_ge(std::size_t j, std::size_t i, double gap);

  /// Convenience: adds an upper bound  x[j] <= bound.
  void add_upper_bound(std::size_t j, double bound);

  /// Convenience: adds a lower bound  x[j] >= bound.
  void add_lower_bound(std::size_t j, double bound);

  /// Solves with two-phase simplex.  When MP_VALIDATE_LEVEL >= 1, an optimal
  /// result is certified before it is returned: the primal point must be
  /// feasible (max_violation within rounding tolerance) and the reported
  /// objective must equal c^T x.
  LpResult solve(int max_iterations = 20000) const;

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Feasibility residual of `x`: the largest violation over all constraints
  /// and the x >= 0 bounds (0 for a feasible point).
  double max_violation(const std::vector<double>& x) const;

  /// c^T x.
  double objective_value(const std::vector<double>& x) const;

 private:
  std::size_t num_variables_;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

}  // namespace mp::lp
