#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "check/annotations.hpp"

namespace mp::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
/// Serializes whole formatted lines onto the stderr stream.
std::mutex g_io_mutex MP_GUARDS("stderr");

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

void init_from_env() {
  const char* env = std::getenv("MP_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return;
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "error") g_level = static_cast<int>(LogLevel::kError);
  else if (v == "warn" || v == "warning") g_level = static_cast<int>(LogLevel::kWarn);
  else if (v == "info") g_level = static_cast<int>(LogLevel::kInfo);
  else if (v == "debug") g_level = static_cast<int>(LogLevel::kDebug);
  else {
    // One warning instead of silently keeping the default (init runs once).
    std::fprintf(stderr,
                 "[warn] MP_LOG_LEVEL=\"%s\" not recognized "
                 "(expected error|warn|info|debug); keeping \"%s\"\n",
                 env, level_name(static_cast<LogLevel>(g_level.load())));
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace mp::util
