#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mp::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

void init_from_env() {
  const char* env = std::getenv("MP_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) g_level = static_cast<int>(LogLevel::kError);
  else if (std::strcmp(env, "warn") == 0) g_level = static_cast<int>(LogLevel::kWarn);
  else if (std::strcmp(env, "info") == 0) g_level = static_cast<int>(LogLevel::kInfo);
  else if (std::strcmp(env, "debug") == 0) g_level = static_cast<int>(LogLevel::kDebug);
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace mp::util
