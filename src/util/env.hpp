#pragma once
// Environment-variable helpers for bench scaling knobs.

#include <string>

namespace mp::util {

/// Reads a double from the environment; returns `fallback` when unset or
/// unparsable.
double env_double(const char* name, double fallback);

/// Reads an int from the environment; returns `fallback` when unset or
/// unparsable.
int env_int(const char* name, int fallback);

/// Global experiment scale in (0, 1]: multiplies cell counts, episode counts
/// and exploration budgets in bench binaries.  Reads REPRO_SCALE once.
double repro_scale();

}  // namespace mp::util
