#include "util/rng.hpp"

#include <cmath>

namespace mp::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double u = uniform() * total;
  int last_positive = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (w > 0.0) last_positive = static_cast<int>(i);
    u -= w;
    if (u < 0.0 && w > 0.0) return static_cast<int>(i);
  }
  return last_positive;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Fold the full 256-bit state into one word (rotations keep the words
  // from cancelling), then run two splitmix64 rounds over (state, id) so
  // adjacent stream ids land far apart.
  std::uint64_t folded = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  std::uint64_t sm = folded + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
  const std::uint64_t a = splitmix64(sm);
  sm ^= stream_id;
  const std::uint64_t b = splitmix64(sm);
  return Rng(a ^ rotl(b, 31));
}

}  // namespace mp::util
