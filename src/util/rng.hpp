#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (benchmark synthesis, simulated
// annealing, RL action sampling, MCTS tie-breaking) draw from util::Rng so a
// fixed seed reproduces a run bit-for-bit across platforms.  The engine is
// xoshiro256** seeded through splitmix64, which has no libstdc++/libc++
// distribution differences (we implement the distributions ourselves).

#include <cstdint>
#include <vector>

namespace mp::util {

/// xoshiro256** engine with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the four words of state via splitmix64 from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns the last index with positive weight if rounding exhausts the
  /// cumulative mass; returns 0 when all weights are zero.
  int categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      const int j = uniform_int(0, i);
      std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

  /// Independent child stream; (parent, salt) pairs give distinct streams.
  /// Advances this generator by one draw.
  Rng fork(std::uint64_t salt);

  /// Statistically independent child stream keyed by `stream_id`, via a
  /// splitmix mix of the current state and the id.  Unlike fork(), does NOT
  /// advance this generator: split(k) is a pure function of (state, k), so
  /// parallel tasks can be seeded per task index — in any order, from any
  /// thread — and a seeded run stays reproducible at every thread count.
  Rng split(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mp::util
