#pragma once
// Wall-clock timing used by the runtime tables (Table IV) and benches.

#include <chrono>

namespace mp::util {

/// Stopwatch measuring wall time since construction or the last reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double minutes() const { return seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mp::util
