#pragma once
// Wall-clock timing used by the runtime tables (Table IV) and benches.

#include <chrono>

namespace mp::util {

/// Stopwatch measuring wall time since construction or the last reset().
class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since the previous lap() (or construction/reset), and starts
  /// the next lap.  seconds() is unaffected.
  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

  double milliseconds() const { return seconds() * 1e3; }
  double minutes() const { return seconds() / 60.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace mp::util
