#include "util/env.hpp"

#include <cstdlib>

namespace mp::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int>(value);
}

double repro_scale() {
  static const double scale = [] {
    double s = env_double("REPRO_SCALE", 1.0);
    if (s <= 0.0) s = 1.0;
    if (s > 1.0) s = 1.0;
    return s;
  }();
  return scale;
}

}  // namespace mp::util
