#pragma once
// Cooperative cancellation for long-running placement work (docs/SERVICE.md).
//
// A CancelToken is a cheap copyable handle to shared cancellation state: the
// owner (a service scheduler, a CLI signal handler, a test) requests
// cancellation or arms a wall-clock deadline, and the inner loops of the
// placement flow — GP spreading rounds, RL episodes, MCTS explorations,
// refinement rounds — poll `cancelled()` at their iteration boundaries and
// return early with a best-effort partial result.
//
// Contract relied on by the flow code:
//   * A default-constructed token is inert: `cancelled()` is a null check
//     that never fires, so threading tokens through options structs costs
//     nothing for offline callers.
//   * Polling never mutates algorithm state — a run with an armed token that
//     is never cancelled is bit-identical to a run without one.
//   * `cancelled()` is safe to call from any thread (relaxed atomic load
//     plus a steady_clock read when a deadline is armed).

#include <atomic>
#include <chrono>
#include <memory>

namespace mp::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: never cancelled, no shared state.
  CancelToken() = default;

  /// Token with live shared state (cancellable, deadline-capable).
  static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// True when this token can ever report cancellation.
  bool valid() const { return state_ != nullptr; }

  /// Requests cancellation; no-op on an inert token.  Idempotent and safe
  /// from any thread (e.g. a signal-handling thread or a socket reader).
  void request_cancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// Arms (or re-arms) an absolute deadline; after it passes, `cancelled()`
  /// reports true.  No-op on an inert token.
  void set_deadline(Clock::time_point deadline) const {
    if (state_ == nullptr) return;
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Arms a deadline `seconds` from now; non-positive values disarm.
  void set_deadline_after(double seconds) const {
    if (state_ == nullptr) return;
    if (seconds <= 0.0) {
      state_->deadline_ns.store(0, std::memory_order_relaxed);
      return;
    }
    set_deadline(Clock::now() + std::chrono::nanoseconds(static_cast<long long>(
                                    seconds * 1e9)));
  }

  /// True once cancellation was requested or an armed deadline passed.
  bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    const long long deadline = state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        Clock::now().time_since_epoch() >= std::chrono::nanoseconds(deadline)) {
      // Latch, so later polls skip the clock read.
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    /// Deadline as steady_clock nanoseconds-since-epoch; 0 = disarmed.
    std::atomic<long long> deadline_ns{0};
  };

  std::shared_ptr<State> state_;
};

}  // namespace mp::util
