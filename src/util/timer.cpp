#include "util/timer.hpp"

// Header-only; this TU exists so the target has a stable archive member.
namespace mp::util {}
