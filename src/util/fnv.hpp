#pragma once
// FNV-1a content hashing shared across layers: stable job IDs from canonical
// job-spec strings (svc/job.cpp), artifact-cache keys from file bytes
// (svc/cache.cpp), placement fingerprints from position bit patterns
// (svc/service.cpp), and the consistent-hash ring of the fleet router
// (net/ring.cpp).  One definition, so the router's ring positions and the
// backends' content-hash IDs can never drift apart.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace mp::util {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnvOffset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& s,
                             std::uint64_t seed = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Folds a double's bit pattern into a running hash (exact, not value-based:
/// -0.0 and 0.0 hash differently, as do NaN payloads).
inline std::uint64_t fnv1a64_double(double v, std::uint64_t seed) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a64(&bits, sizeof(bits), seed);
}

/// 16-digit lowercase hex rendering (fixed width so IDs align in logs).
inline std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace mp::util
