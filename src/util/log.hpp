#pragma once
// Minimal leveled logger.  Output goes to stderr so bench tables on stdout
// stay machine-parsable.  Level is controlled programmatically or by the
// MP_LOG_LEVEL environment variable (error|warn|info|debug).

#include <sstream>
#include <string>

namespace mp::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] message") if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  // Filtering is resolved up front so a dropped message never pays for
  // formatting (the destructor used to build the string unconditionally).
  explicit LogStream(LogLevel level)
      : level_(level), enabled_(level <= log_level()) {}
  ~LogStream() {
    if (enabled_) log_line(level_, stream_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }

}  // namespace mp::util
