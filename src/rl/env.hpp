#pragma once
// The macro-group allocation MDP (Sec. III-A/B).  An episode places the
// macro groups, in non-increasing area order, one per step; an action is the
// flat index of the grid cell whose lower-left corner anchors the group.
// The observable state is ⟨s_p, s_a, t⟩:
//   s_p — per-cell utilization of everything placed so far (plus preplaced
//         macros), groups aligned to the lower-left corner of their anchor,
//   s_a — Eq. (4) availability of each anchor for the *next* group,
//   t   — the sequence number of the group to place.

#include <memory>
#include <vector>

#include "cluster/coarse.hpp"
#include "grid/occupancy.hpp"

namespace mp::rl {

/// Evaluates the wirelength of a complete allocation (anchors for every
/// macro group).  Training uses a fast coarse evaluator; the final flow can
/// plug in the full legalize-and-place pipeline.
class AllocationEvaluator {
 public:
  virtual ~AllocationEvaluator() = default;
  /// Returns the HPWL W of the placement induced by `anchors`.
  virtual double evaluate(const std::vector<grid::CellCoord>& anchors) = 0;

  /// Optimistic completion estimate for a *partial* allocation: the first
  /// `anchors.size()` groups are pinned, the remaining groups relax freely.
  /// Used by the MCTS partial-placement leaf evaluation; the default falls
  /// back to pinning nothing extra and is only exact for full allocations.
  virtual double evaluate_partial(const std::vector<grid::CellCoord>& anchors) {
    return evaluate(anchors);
  }

  /// Independent copy for use on a par:: worker thread, or nullptr when the
  /// evaluator is not clonable (callers must then evaluate serially through
  /// the shared instance).  A clone must return bit-identical values for
  /// identical allocations.
  virtual std::unique_ptr<AllocationEvaluator> clone() const { return nullptr; }

  /// Batched counterpart of evaluate(): scores anchor_sets[i] into slot i of
  /// the result.  The default clones the evaluator once per par:: chunk and
  /// scores the sets in parallel, falling back to a serial loop when clone()
  /// is unsupported.  Either way the result is bit-identical to calling
  /// evaluate() serially per set (clones are bit-identical and sets are
  /// independent), so the batched MCTS leaf path can use it freely.
  virtual std::vector<double> evaluate_many(
      const std::vector<std::vector<grid::CellCoord>>& anchor_sets);

  /// Batched evaluate_partial(), same contract as evaluate_many().
  virtual std::vector<double> evaluate_partial_many(
      const std::vector<std::vector<grid::CellCoord>>& anchor_sets);
};

/// Per-step action restriction: mask[t] is the sorted list of flat cell
/// indices the step-t group may anchor at.  Shared (immutable) so copying an
/// env — the MCTS batched leaf path copies envs per pending leaf — stays
/// cheap.  The regulate flow builds one from the incumbent anchors and the
/// trust-region radius (place/regulate_placer.hpp).
using ActionMask = std::vector<std::vector<int>>;

class PlacementEnv {
 public:
  /// `coarse` and `clustering` must outlive the environment.
  PlacementEnv(const cluster::CoarseDesign& coarse,
               const cluster::Clustering& clustering, grid::GridSpec spec);

  /// Restricts step() / legal_actions() to the masked cells: step t only
  /// accepts actions in (*mask)[t], and legal_actions() only scans them.
  /// `mask` must have one entry per step, each sorted ascending; nullptr
  /// removes the restriction.  Affects future steps only (not a reset).
  void set_allowed_actions(std::shared_ptr<const ActionMask> mask);
  const std::shared_ptr<const ActionMask>& allowed_actions() const {
    return mask_;
  }

  const grid::GridSpec& spec() const { return spec_; }
  int num_steps() const { return static_cast<int>(footprints_.size()); }
  int current_step() const { return step_; }
  bool done() const { return step_ >= num_steps(); }

  void reset();

  /// s_p as a flat dim×dim utilization map.
  std::vector<double> placement_state() const { return occupancy_.utilization_map(); }

  /// Footprint (s_m) of the group to be placed at the current step.
  const grid::Footprint& current_footprint() const;

  /// s_a (Eq. 4) for the current step's group.
  std::vector<double> availability() const;

  /// Places the current group with its anchor at flat cell index `action`.
  /// Returns false (state unchanged) when the action is out of bounds or the
  /// footprint would leave the chip.
  bool step(int action);

  /// Anchors chosen so far (size == current_step()).
  const std::vector<grid::CellCoord>& anchors() const { return anchors_; }

  /// Flat indices of the actions that keep the footprint on-chip at the
  /// current step (availability may still be 0 on full cells).
  std::vector<int> legal_actions() const;

 private:
  const cluster::CoarseDesign& coarse_;
  grid::GridSpec spec_;
  std::vector<grid::Footprint> footprints_;  ///< per macro group, in order
  grid::OccupancyMap occupancy_;
  grid::OccupancyMap initial_occupancy_;  ///< preplaced macros only
  std::vector<grid::CellCoord> anchors_;
  std::shared_ptr<const ActionMask> mask_;  ///< nullptr = all cells allowed
  int step_ = 0;
};

}  // namespace mp::rl
