#include "rl/coarse_evaluator.hpp"

#include <cassert>

#include "obs/obs.hpp"

namespace mp::rl {

CoarseEvaluator::CoarseEvaluator(const cluster::CoarseDesign& coarse,
                                 grid::GridSpec spec, qp::QpOptions qp_options)
    : design_(coarse.design),
      macro_group_nodes_(coarse.macro_group_nodes),
      cell_group_nodes_(coarse.cell_group_nodes),
      spec_(spec),
      qp_options_(qp_options) {
  initial_cell_positions_.reserve(cell_group_nodes_.size());
  for (netlist::NodeId id : cell_group_nodes_) {
    initial_cell_positions_.push_back(design_.node(id).position);
  }
  initial_macro_positions_.reserve(macro_group_nodes_.size());
  for (netlist::NodeId id : macro_group_nodes_) {
    initial_macro_positions_.push_back(design_.node(id).position);
    const netlist::Node& node = design_.node(id);
    group_footprints_.push_back(
        grid::make_footprint(spec_, node.width, node.height));
    total_group_area_ += node.area();
  }
}

double CoarseEvaluator::evaluate(const std::vector<grid::CellCoord>& anchors) {
  assert(anchors.size() == macro_group_nodes_.size());
  ++evaluations_;
  MP_OBS_COUNT("evaluator.coarse_evaluations", 1);
  // Pin each macro group with its lower-left corner at the anchor cell's
  // origin — the same alignment the occupancy/state model uses.
  for (std::size_t g = 0; g < anchors.size(); ++g) {
    netlist::Node& node = design_.node(macro_group_nodes_[g]);
    node.position = spec_.cell_origin(anchors[g]);
  }
  for (std::size_t c = 0; c < cell_group_nodes_.size(); ++c) {
    design_.node(cell_group_nodes_[c]).position = initial_cell_positions_[c];
  }
  qp::solve_quadratic_placement(design_, cell_group_nodes_, {}, {}, qp_options_);
  double w = design_.total_hpwl();
  if (overflow_penalty_ > 0.0 && total_group_area_ > 0.0) {
    grid::OccupancyMap occupancy(spec_);
    for (std::size_t g = 0; g < anchors.size(); ++g) {
      if (occupancy.fits(group_footprints_[g], anchors[g])) {
        occupancy.place(group_footprints_[g], anchors[g]);
      }
    }
    w *= 1.0 + overflow_penalty_ * occupancy.total_overflow() /
                   total_group_area_;
  }
  return w;
}

double CoarseEvaluator::evaluate_partial(
    const std::vector<grid::CellCoord>& anchors) {
  assert(anchors.size() <= macro_group_nodes_.size());
  ++evaluations_;
  MP_OBS_COUNT("evaluator.coarse_partial_evaluations", 1);
  // Pin the prefix; everything else (remaining macro groups + cell groups)
  // starts from its canonical position and relaxes in one joint QP.
  std::vector<netlist::NodeId> movable;
  movable.reserve(macro_group_nodes_.size() - anchors.size() +
                  cell_group_nodes_.size());
  for (std::size_t g = 0; g < macro_group_nodes_.size(); ++g) {
    netlist::Node& node = design_.node(macro_group_nodes_[g]);
    if (g < anchors.size()) {
      node.position = spec_.cell_origin(anchors[g]);
    } else {
      node.position = initial_macro_positions_[g];
      movable.push_back(macro_group_nodes_[g]);
    }
  }
  for (std::size_t c = 0; c < cell_group_nodes_.size(); ++c) {
    design_.node(cell_group_nodes_[c]).position = initial_cell_positions_[c];
    movable.push_back(cell_group_nodes_[c]);
  }
  qp::solve_quadratic_placement(design_, movable, {}, {}, qp_options_);
  return design_.total_hpwl();
}

}  // namespace mp::rl
