#pragma once
// Actor-Critic pre-training (Sec. III-D, Algorithm 1 lines 3-10).
//
// Each episode plays the allocation MDP to the end with actions sampled from
// π_θ, evaluates the wirelength W of the terminal allocation, maps it to the
// episode reward r = 𝔇(W) (Eq. 9) which is assigned to *every* step, and
// accumulates the Actor-Critic gradients
//     ∇L_policy = Σ_t ∇[-log p_θ(a_t)] · A_t ,   A_t = R_t − v_θ,t   (Eqs. 5-6)
//     ∇L_value  = Σ_t ∇(A_t²)                                        (Eq. 7)
// through the shared network.  θ is updated every `update_window` episodes
// (30 in the paper).

#include <functional>
#include <vector>

#include "rl/agent.hpp"
#include "rl/reward.hpp"
#include "util/cancel.hpp"

namespace mp::rl {

struct TrainOptions {
  int episodes = 200;
  int update_window = 30;       ///< paper: update θ every 30 episodes
  float learning_rate = 1e-3f;
  double grad_clip = 5.0;
  double alpha = 0.75;          ///< Eq. (9) α (paper range [0.5, 1])
  int calibration_episodes = 50;
  std::uint64_t seed = 42;
  /// Collect each update window's episodes concurrently on the par:: pool:
  /// every episode rolls out on a frozen clone of θ with its own
  /// Rng::split stream, then gradients are replayed serially in episode
  /// order on the live network.  Engaged only when the pool has more than
  /// one thread and the evaluator is clonable; otherwise (and always at
  /// --threads 1) the classic serial loop runs, bit-identical to the
  /// pre-parallel implementation.  Parallel-mode results are deterministic
  /// — independent of the thread count — but are a different (equally
  /// valid) trajectory than the serial loop: rollouts use per-episode rng
  /// streams and the window's policy snapshot instead of the
  /// continuously-updated gradient buffer.  See docs/PARALLELISM.md.
  bool parallel_rollouts = true;
  /// Custom reward; when empty, Eq. (9) is calibrated and used.
  RewardFn reward;
  /// Called after every episode with (episode index, reward, wirelength).
  std::function<void(int, double, double)> on_episode;
  /// Cooperative cancellation, polled at rollout-step and episode
  /// boundaries: a cancelled run stops without applying a partial gradient
  /// window and returns the episodes trained so far (TrainResult::cancelled).
  /// Never perturbs an uncancelled run (bit-identity guard, see
  /// docs/SERVICE.md).
  util::CancelToken cancel;
};

struct EpisodeRecord {
  double reward = 0.0;
  double wirelength = 0.0;
};

struct TrainResult {
  std::vector<EpisodeRecord> episodes;
  RewardCalibration calibration;
  double best_wirelength = 0.0;
  std::vector<grid::CellCoord> best_anchors;
  int optimizer_steps = 0;
  bool cancelled = false;  ///< stopped early via TrainOptions::cancel
};

/// Pre-trains `agent` on `env`; wirelengths come from `evaluator`.
TrainResult train_agent(PlacementEnv& env, AllocationEvaluator& evaluator,
                        AgentNetwork& agent, const TrainOptions& options);

/// Plays one greedy (argmax) episode with the current policy and returns the
/// evaluated wirelength; `anchors_out` receives the allocation.  This is the
/// "RL result" the paper compares MCTS against (Fig. 5) and the CT-style
/// RL-only baseline.
double play_greedy_episode(PlacementEnv& env, AllocationEvaluator& evaluator,
                           AgentNetwork& agent,
                           std::vector<grid::CellCoord>& anchors_out);

}  // namespace mp::rl
