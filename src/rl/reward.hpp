#pragma once
// Reward shaping (Sec. III-E, Eq. 9).  Before training, the environment is
// played randomly for a number of episodes; the maximum δ, minimum γ and
// mean Δ of the observed wirelengths calibrate the reward
//     𝔇(W) = (−W + Δ) / (δ − γ) + α ,
// which keeps episode rewards slightly above zero for α ∈ [0.5, 1] — the
// regime the paper shows converges fastest (Fig. 4).

#include <functional>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace mp::rl {

/// Maps a measured wirelength W to a scalar reward.
using RewardFn = std::function<double(double wirelength)>;

struct RewardCalibration {
  double wl_max = 1.0;   ///< δ
  double wl_min = 0.0;   ///< γ
  double wl_mean = 0.5;  ///< Δ

  /// Eq. (9) with the given α.
  RewardFn make_reward(double alpha) const;
};

/// Plays `episodes` uniformly-random episodes, evaluating each final
/// allocation, and returns the observed wirelength statistics.
RewardCalibration calibrate_reward(PlacementEnv& env,
                                   AllocationEvaluator& evaluator,
                                   int episodes, util::Rng& rng);

/// The "intuitive" baseline reward −W (Fig. 4b).
RewardFn negative_wirelength_reward();

}  // namespace mp::rl
