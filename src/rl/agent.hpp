#pragma once
// The Actor-Critic agent (Sec. III-C, Fig. 2, Table I): a shared
// convolutional trunk (Conv+BN+ReLU then a residual tower) feeding
//   * a policy head — 1×1 Conv(→2ch)+BN+ReLU, FC to ζ² logits, softmax
//     masked by the availability map s_a (implemented as a multiplicative
//     mask on the softmax, which equals the paper's "multiply by s_a"), and
//   * a value head — the sequence number t enters as a positional-embedding
//     plane concatenated with s_p and the trunk features, then 1×1
//     Conv(→1ch)+BN+ReLU and a 3-layer MLP producing the scalar v.
//
// The paper's configuration is channels=128, blocks=10 on a 16×16 grid; both
// are configurable (CPU benches use a smaller tower — see EXPERIMENTS.md).

#include <memory>
#include <vector>

#include "nn/functional.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"

namespace mp::rl {

struct AgentConfig {
  int grid_dim = 16;   ///< ζ
  int channels = 128;  ///< residual tower width
  int res_blocks = 10; ///< residual tower depth
  std::uint64_t seed = 1;
};

struct AgentOutput {
  nn::Tensor probs;  ///< ζ² action probabilities (masked, normalized)
  float value = 0.0f;
};

/// One observation ⟨s_p, s_a, t⟩ for the batched inference entry points
/// (AgentNetwork::forward_many, infer::InferenceEngine).
struct NetInput {
  std::vector<double> sp;            ///< flat ζ² utilization map
  std::vector<double> availability;  ///< flat ζ² mask s_a
  int t = 0;
  int total_steps = 0;
};

class AgentNetwork {
 public:
  explicit AgentNetwork(const AgentConfig& config);

  const AgentConfig& config() const { return config_; }

  /// Forward pass.  `sp` is the flat ζ² utilization map (s_p), `availability`
  /// the ζ² mask (s_a), `t` the 0-based step and `total_steps` the episode
  /// length (for embedding normalization).  With train=true, BN uses batch
  /// statistics and the intermediates for backward() are cached.
  AgentOutput forward(const std::vector<double>& sp,
                      const std::vector<double>& availability, int t,
                      int total_steps, bool train);

  /// Batched inference forward: one N×C×H×W pass through the whole network
  /// (one im2col + one GEMM per conv for the batch).  Output i is
  /// bit-identical to forward(inputs[i], train=false) — see docs/INFERENCE.md
  /// for why this holds — and unlike forward() it leaves the backward caches
  /// untouched.  Not thread-safe (layers scratch internal state); the
  /// inference engine serializes calls per snapshot.
  std::vector<AgentOutput> forward_many(const std::vector<NetInput>& inputs);

  /// FNV-1a content hash of the architecture and every parameter value's
  /// bit pattern (BN running statistics included).  Networks with equal
  /// hashes are interchangeable for inference; the inference engine keys
  /// its snapshot registry on this.
  std::uint64_t parameter_hash();

  /// Backward for the most recent forward(train=true): `policy_logit_grad`
  /// is dL/d(policy logits) (ζ², e.g. from nn::policy_gradient) and
  /// `value_grad` is dL/dv.  Parameter gradients accumulate.
  void backward(const nn::Tensor& policy_logit_grad, float value_grad);

  std::vector<nn::Parameter*> parameters();

  /// Deep copy: a fresh network with identical parameter values.  BN running
  /// statistics are Parameters too, so inference on the clone matches the
  /// original exactly.  Forward caches are not copied — the clone is ready
  /// for independent forward() calls (e.g. on a par:: worker).
  std::unique_ptr<AgentNetwork> clone();

  /// Overwrites this network's parameter values with `other`'s.  Both
  /// networks must have been built from the same AgentConfig shape.
  void copy_parameters_from(AgentNetwork& other);

  /// Number of scalar parameters (for reporting).
  std::size_t num_parameters();

 private:
  nn::Tensor make_input_plane(const std::vector<double>& sp) const;

  AgentConfig config_;
  util::Rng rng_;

  // Trunk.
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  nn::ReLU relu1_;
  std::vector<std::unique_ptr<nn::ResBlock>> tower_;
  // Policy head.
  nn::Conv2d conv_p_;
  nn::BatchNorm2d bn_p_;
  nn::ReLU relu_p_;
  nn::Linear fc_p_;
  // Value head.
  nn::Conv2d conv_v_;
  nn::BatchNorm2d bn_v_;
  nn::ReLU relu_v_;
  nn::Linear mlp1_, mlp2_, mlp3_;
  nn::ReLU relu_m1_, relu_m2_;

  // Forward caches for backward().
  nn::Tensor trunk_out_;
  int cached_dim_ = 0;
};

}  // namespace mp::rl
