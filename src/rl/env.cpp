#include "rl/env.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "obs/obs.hpp"

#include "par/par.hpp"

namespace mp::rl {

namespace {

// Shared body of evaluate_many / evaluate_partial_many: chunk the sets with
// par::parallel_for (grain 1 — each evaluation is a full coarse-QP solve),
// give every chunk its own clone, and score through `fn`.  Falls back to the
// shared instance serially when the evaluator is not clonable.
template <typename Fn>
std::vector<double> evaluate_sets(
    AllocationEvaluator& self,
    const std::vector<std::vector<grid::CellCoord>>& anchor_sets, Fn fn) {
  const std::size_t n = anchor_sets.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  constexpr std::size_t kGrain = 1;
  std::vector<std::unique_ptr<AllocationEvaluator>> clones;
  if (n > 1) {
    const std::size_t chunks = par::detail::chunk_count(n, kGrain);
    clones.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) clones.push_back(self.clone());
  }
  if (n == 1 || clones.front() == nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(self, anchor_sets[i]);
    return out;
  }
  par::parallel_for(0, n, kGrain, [&](std::size_t lo, std::size_t hi) {
    AllocationEvaluator& eval = *clones[lo / kGrain];
    for (std::size_t i = lo; i < hi; ++i) out[i] = fn(eval, anchor_sets[i]);
  });
  return out;
}

}  // namespace

std::vector<double> AllocationEvaluator::evaluate_many(
    const std::vector<std::vector<grid::CellCoord>>& anchor_sets) {
  return evaluate_sets(*this, anchor_sets,
                       [](AllocationEvaluator& e,
                          const std::vector<grid::CellCoord>& anchors) {
                         return e.evaluate(anchors);
                       });
}

std::vector<double> AllocationEvaluator::evaluate_partial_many(
    const std::vector<std::vector<grid::CellCoord>>& anchor_sets) {
  return evaluate_sets(*this, anchor_sets,
                       [](AllocationEvaluator& e,
                          const std::vector<grid::CellCoord>& anchors) {
                         return e.evaluate_partial(anchors);
                       });
}

PlacementEnv::PlacementEnv(const cluster::CoarseDesign& coarse,
                           const cluster::Clustering& clustering,
                           grid::GridSpec spec)
    : coarse_(coarse),
      spec_(spec),
      occupancy_(spec),
      initial_occupancy_(spec) {
  footprints_.reserve(clustering.macro_groups.size());
  for (const cluster::Group& group : clustering.macro_groups) {
    footprints_.push_back(grid::make_footprint(spec_, group.width, group.height));
  }
  // Preplaced (fixed) macros pre-fill the occupancy: their geometric overlap
  // with each cell counts as occupied area.
  for (const netlist::Node& node : coarse_.design.nodes()) {
    if (node.kind != netlist::NodeKind::kMacro || !node.fixed) continue;
    const geometry::Rect rect = node.rect();
    const grid::Footprint fp = grid::make_footprint(spec_, rect.w, rect.h);
    grid::CellCoord anchor = spec_.cell_of(rect.lower_left());
    // Clamp so the footprint stays on the grid (fixed macros on the border).
    anchor.gx = std::min(anchor.gx, spec_.dim() - fp.nx);
    anchor.gy = std::min(anchor.gy, spec_.dim() - fp.ny);
    if (anchor.gx < 0 || anchor.gy < 0) continue;
    initial_occupancy_.place(fp, anchor);
  }
  reset();
}

void PlacementEnv::set_allowed_actions(
    std::shared_ptr<const ActionMask> mask) {
  MP_CHECK(mask == nullptr ||
               static_cast<int>(mask->size()) == num_steps(),
           "action mask must cover every step");
  mask_ = std::move(mask);
}

void PlacementEnv::reset() {
  occupancy_ = initial_occupancy_;
  anchors_.clear();
  step_ = 0;
}

const grid::Footprint& PlacementEnv::current_footprint() const {
  assert(!done());
  return footprints_[static_cast<std::size_t>(step_)];
}

std::vector<double> PlacementEnv::availability() const {
  assert(!done());
  return grid::availability_map(occupancy_, current_footprint());
}

bool PlacementEnv::step(int action) {
  assert(!done());
  if (action < 0 || action >= spec_.num_cells()) return false;
  if (mask_ != nullptr) {
    const std::vector<int>& allowed = (*mask_)[static_cast<std::size_t>(step_)];
    if (!std::binary_search(allowed.begin(), allowed.end(), action)) {
      return false;
    }
  }
  const grid::CellCoord anchor = spec_.coord(action);
  const grid::Footprint& fp = current_footprint();
  if (!occupancy_.fits(fp, anchor)) return false;
  occupancy_.place(fp, anchor);
  anchors_.push_back(anchor);
  ++step_;
  MP_OBS_COUNT("rl.env.steps", 1);
  // The incremental occupancy map is the env's only source of truth for
  // legality; reconcile it against a replay of the anchor history — every
  // step when exhaustive, once per episode when cheap.
  const int level = check::validate_level();
  if (level >= 2 || (level >= 1 && done())) {
    check::validate_occupancy_reconciles(occupancy_, initial_occupancy_,
                                         footprints_, anchors_, "rl.env.step");
  }
  return true;
}

std::vector<int> PlacementEnv::legal_actions() const {
  assert(!done());
  const grid::Footprint& fp = current_footprint();
  std::vector<int> actions;
  if (mask_ != nullptr) {
    // Masked steps scan only the allowed cells (already sorted), so the
    // trust-region flows pay O(|mask|) instead of O(dim^2) per expansion.
    for (int flat : (*mask_)[static_cast<std::size_t>(step_)]) {
      if (occupancy_.fits(fp, spec_.coord(flat))) actions.push_back(flat);
    }
    return actions;
  }
  for (int flat = 0; flat < spec_.num_cells(); ++flat) {
    if (occupancy_.fits(fp, spec_.coord(flat))) actions.push_back(flat);
  }
  return actions;
}

}  // namespace mp::rl
