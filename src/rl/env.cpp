#include "rl/env.hpp"

#include <cassert>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "obs/obs.hpp"

namespace mp::rl {

PlacementEnv::PlacementEnv(const cluster::CoarseDesign& coarse,
                           const cluster::Clustering& clustering,
                           grid::GridSpec spec)
    : coarse_(coarse),
      spec_(spec),
      occupancy_(spec),
      initial_occupancy_(spec) {
  footprints_.reserve(clustering.macro_groups.size());
  for (const cluster::Group& group : clustering.macro_groups) {
    footprints_.push_back(grid::make_footprint(spec_, group.width, group.height));
  }
  // Preplaced (fixed) macros pre-fill the occupancy: their geometric overlap
  // with each cell counts as occupied area.
  for (const netlist::Node& node : coarse_.design.nodes()) {
    if (node.kind != netlist::NodeKind::kMacro || !node.fixed) continue;
    const geometry::Rect rect = node.rect();
    const grid::Footprint fp = grid::make_footprint(spec_, rect.w, rect.h);
    grid::CellCoord anchor = spec_.cell_of(rect.lower_left());
    // Clamp so the footprint stays on the grid (fixed macros on the border).
    anchor.gx = std::min(anchor.gx, spec_.dim() - fp.nx);
    anchor.gy = std::min(anchor.gy, spec_.dim() - fp.ny);
    if (anchor.gx < 0 || anchor.gy < 0) continue;
    initial_occupancy_.place(fp, anchor);
  }
  reset();
}

void PlacementEnv::reset() {
  occupancy_ = initial_occupancy_;
  anchors_.clear();
  step_ = 0;
}

const grid::Footprint& PlacementEnv::current_footprint() const {
  assert(!done());
  return footprints_[static_cast<std::size_t>(step_)];
}

std::vector<double> PlacementEnv::availability() const {
  assert(!done());
  return grid::availability_map(occupancy_, current_footprint());
}

bool PlacementEnv::step(int action) {
  assert(!done());
  if (action < 0 || action >= spec_.num_cells()) return false;
  const grid::CellCoord anchor = spec_.coord(action);
  const grid::Footprint& fp = current_footprint();
  if (!occupancy_.fits(fp, anchor)) return false;
  occupancy_.place(fp, anchor);
  anchors_.push_back(anchor);
  ++step_;
  MP_OBS_COUNT("rl.env.steps", 1);
  // The incremental occupancy map is the env's only source of truth for
  // legality; reconcile it against a replay of the anchor history — every
  // step when exhaustive, once per episode when cheap.
  const int level = check::validate_level();
  if (level >= 2 || (level >= 1 && done())) {
    check::validate_occupancy_reconciles(occupancy_, initial_occupancy_,
                                         footprints_, anchors_, "rl.env.step");
  }
  return true;
}

std::vector<int> PlacementEnv::legal_actions() const {
  assert(!done());
  const grid::Footprint& fp = current_footprint();
  std::vector<int> actions;
  for (int flat = 0; flat < spec_.num_cells(); ++flat) {
    if (occupancy_.fits(fp, spec_.coord(flat))) actions.push_back(flat);
  }
  return actions;
}

}  // namespace mp::rl
