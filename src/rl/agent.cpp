#include "rl/agent.hpp"

#include <cassert>

#include "util/fnv.hpp"

namespace mp::rl {

namespace {
// Value-head input channels: trunk features + s_p plane + t plane.
int value_in_channels(int channels) { return channels + 2; }
}  // namespace

AgentNetwork::AgentNetwork(const AgentConfig& config)
    : config_(config),
      rng_(config.seed),
      conv1_(1, config.channels, 3, rng_),
      bn1_(config.channels),
      conv_p_(config.channels, 2, 1, rng_),
      bn_p_(2),
      fc_p_(2 * config.grid_dim * config.grid_dim,
            config.grid_dim * config.grid_dim, rng_),
      conv_v_(value_in_channels(config.channels), 1, 1, rng_),
      bn_v_(1),
      mlp1_(config.grid_dim * config.grid_dim, 16, rng_),
      mlp2_(16, config.grid_dim * config.grid_dim, rng_),
      mlp3_(config.grid_dim * config.grid_dim, 1, rng_) {
  tower_.reserve(static_cast<std::size_t>(config.res_blocks));
  for (int i = 0; i < config.res_blocks; ++i) {
    tower_.push_back(std::make_unique<nn::ResBlock>(config.channels, rng_));
  }
}

nn::Tensor AgentNetwork::make_input_plane(const std::vector<double>& sp) const {
  const int d = config_.grid_dim;
  assert(static_cast<int>(sp.size()) == d * d);
  nn::Tensor input({1, d, d});
  for (std::size_t i = 0; i < sp.size(); ++i) {
    input[i] = static_cast<float>(sp[i]);
  }
  return input;
}

AgentOutput AgentNetwork::forward(const std::vector<double>& sp,
                                  const std::vector<double>& availability,
                                  int t, int total_steps, bool train) {
  const int d = config_.grid_dim;
  cached_dim_ = d;
  const nn::Tensor input = make_input_plane(sp);

  // Trunk.
  nn::Tensor h = conv1_.forward(input, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  for (auto& block : tower_) h = block->forward(h, train);
  trunk_out_ = h;

  // Policy head.
  nn::Tensor p = conv_p_.forward(h, train);
  p = bn_p_.forward(p, train);
  p = relu_p_.forward(p, train);
  p.reshape({2 * d * d});
  nn::Tensor logits = fc_p_.forward(p, train);

  // Value head: concat [trunk | s_p | t-plane].
  const int cv = value_in_channels(config_.channels);
  nn::Tensor v_in({cv, d, d});
  const std::size_t plane = static_cast<std::size_t>(d) * d;
  for (std::size_t i = 0; i < static_cast<std::size_t>(config_.channels) * plane; ++i) {
    v_in[i] = trunk_out_[i];
  }
  for (std::size_t i = 0; i < plane; ++i) {
    v_in[static_cast<std::size_t>(config_.channels) * plane + i] =
        static_cast<float>(sp[i]);
  }
  const float t_embed =
      total_steps > 0 ? static_cast<float>(t) / static_cast<float>(total_steps)
                      : 0.0f;
  for (std::size_t i = 0; i < plane; ++i) {
    v_in[static_cast<std::size_t>(config_.channels + 1) * plane + i] = t_embed;
  }
  nn::Tensor v = conv_v_.forward(v_in, train);
  v = bn_v_.forward(v, train);
  v = relu_v_.forward(v, train);
  v.reshape({d * d});
  v = mlp1_.forward(v, train);
  v = relu_m1_.forward(v, train);
  v = mlp2_.forward(v, train);
  v = relu_m2_.forward(v, train);
  v = mlp3_.forward(v, train);

  AgentOutput out;
  out.probs = nn::masked_softmax(logits, availability);
  out.value = v[0];
  return out;
}

std::vector<AgentOutput> AgentNetwork::forward_many(
    const std::vector<NetInput>& inputs) {
  const int batch = static_cast<int>(inputs.size());
  std::vector<AgentOutput> outputs;
  if (batch == 0) return outputs;
  const int d = config_.grid_dim;
  const std::size_t plane = static_cast<std::size_t>(d) * d;

  nn::Tensor input({batch, 1, d, d});
  for (int bi = 0; bi < batch; ++bi) {
    assert(static_cast<int>(inputs[static_cast<std::size_t>(bi)].sp.size()) ==
           d * d);
    float* dst = input.data() + static_cast<std::size_t>(bi) * plane;
    const std::vector<double>& sp = inputs[static_cast<std::size_t>(bi)].sp;
    for (std::size_t i = 0; i < plane; ++i) dst[i] = static_cast<float>(sp[i]);
  }

  // Trunk.
  nn::Tensor h = conv1_.forward_batched(input, batch);
  h = bn1_.forward_batched(h, batch);
  h = relu1_.forward_batched(h, batch);
  for (auto& block : tower_) h = block->forward_batched(h, batch);

  // Policy head.
  nn::Tensor p = conv_p_.forward_batched(h, batch);
  p = bn_p_.forward_batched(p, batch);
  p = relu_p_.forward_batched(p, batch);
  p.reshape({batch, 2 * d * d});
  nn::Tensor logits = fc_p_.forward_batched(p, batch);  // [batch, d*d]

  // Value head: per-sample concat [trunk | s_p | t-plane].
  const int cv = value_in_channels(config_.channels);
  const std::size_t trunk_planes = static_cast<std::size_t>(config_.channels) * plane;
  nn::Tensor v_in({batch, cv, d, d});
  for (int bi = 0; bi < batch; ++bi) {
    const NetInput& in = inputs[static_cast<std::size_t>(bi)];
    float* dst = v_in.data() + static_cast<std::size_t>(bi) * cv * plane;
    const float* trunk = h.data() + static_cast<std::size_t>(bi) * trunk_planes;
    for (std::size_t i = 0; i < trunk_planes; ++i) dst[i] = trunk[i];
    for (std::size_t i = 0; i < plane; ++i) {
      dst[trunk_planes + i] = static_cast<float>(in.sp[i]);
    }
    const float t_embed = in.total_steps > 0
                              ? static_cast<float>(in.t) /
                                    static_cast<float>(in.total_steps)
                              : 0.0f;
    for (std::size_t i = 0; i < plane; ++i) {
      dst[trunk_planes + plane + i] = t_embed;
    }
  }
  nn::Tensor v = conv_v_.forward_batched(v_in, batch);
  v = bn_v_.forward_batched(v, batch);
  v = relu_v_.forward_batched(v, batch);
  v.reshape({batch, d * d});
  v = mlp1_.forward_batched(v, batch);
  v = relu_m1_.forward_batched(v, batch);
  v = mlp2_.forward_batched(v, batch);
  v = relu_m2_.forward_batched(v, batch);
  v = mlp3_.forward_batched(v, batch);  // [batch, 1]

  outputs.resize(static_cast<std::size_t>(batch));
  nn::Tensor sample_logits({d * d});
  for (int bi = 0; bi < batch; ++bi) {
    const float* row = logits.data() + static_cast<std::size_t>(bi) * plane;
    for (std::size_t i = 0; i < plane; ++i) sample_logits[i] = row[i];
    outputs[static_cast<std::size_t>(bi)].probs = nn::masked_softmax(
        sample_logits, inputs[static_cast<std::size_t>(bi)].availability);
    outputs[static_cast<std::size_t>(bi)].value =
        v[static_cast<std::size_t>(bi)];
  }
  return outputs;
}

std::uint64_t AgentNetwork::parameter_hash() {
  std::uint64_t h = util::kFnvOffset;
  h = util::fnv1a64(&config_.grid_dim, sizeof(config_.grid_dim), h);
  h = util::fnv1a64(&config_.channels, sizeof(config_.channels), h);
  h = util::fnv1a64(&config_.res_blocks, sizeof(config_.res_blocks), h);
  for (const nn::Parameter* p : parameters()) {
    h = util::fnv1a64(p->value.data(), sizeof(float) * p->value.size(), h);
  }
  return h;
}

void AgentNetwork::backward(const nn::Tensor& policy_logit_grad,
                            float value_grad) {
  const int d = cached_dim_;
  const std::size_t plane = static_cast<std::size_t>(d) * d;

  // Policy head backward -> gradient at trunk output.
  nn::Tensor gp = fc_p_.backward(policy_logit_grad);
  gp.reshape({2, d, d});
  gp = relu_p_.backward(gp);
  gp = bn_p_.backward(gp);
  nn::Tensor g_trunk = conv_p_.backward(gp);

  // Value head backward.
  nn::Tensor gv({1});
  gv[0] = value_grad;
  gv = mlp3_.backward(gv);
  gv = relu_m2_.backward(gv);
  gv = mlp2_.backward(gv);
  gv = relu_m1_.backward(gv);
  gv = mlp1_.backward(gv);
  gv.reshape({1, d, d});
  gv = relu_v_.backward(gv);
  gv = bn_v_.backward(gv);
  nn::Tensor g_vin = conv_v_.backward(gv);
  // Slice the trunk-feature channels; s_p/t-plane gradients are discarded.
  for (std::size_t i = 0; i < static_cast<std::size_t>(config_.channels) * plane; ++i) {
    g_trunk[i] += g_vin[i];
  }

  // Trunk backward.
  nn::Tensor g = g_trunk;
  for (auto it = tower_.rbegin(); it != tower_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  g = relu1_.backward(g);
  g = bn1_.backward(g);
  conv1_.backward(g);
}

std::vector<nn::Parameter*> AgentNetwork::parameters() {
  std::vector<nn::Parameter*> out;
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  for (auto& block : tower_) block->collect_parameters(out);
  conv_p_.collect_parameters(out);
  bn_p_.collect_parameters(out);
  fc_p_.collect_parameters(out);
  conv_v_.collect_parameters(out);
  bn_v_.collect_parameters(out);
  mlp1_.collect_parameters(out);
  mlp2_.collect_parameters(out);
  mlp3_.collect_parameters(out);
  return out;
}

std::unique_ptr<AgentNetwork> AgentNetwork::clone() {
  auto copy = std::make_unique<AgentNetwork>(config_);
  copy->copy_parameters_from(*this);
  return copy;
}

void AgentNetwork::copy_parameters_from(AgentNetwork& other) {
  std::vector<nn::Parameter*> dst = parameters();
  std::vector<nn::Parameter*> src = other.parameters();
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    assert(dst[i]->value.size() == src[i]->value.size());
    dst[i]->value = src[i]->value;
  }
}

std::size_t AgentNetwork::num_parameters() {
  std::size_t total = 0;
  for (const nn::Parameter* p : parameters()) total += p->value.size();
  return total;
}

}  // namespace mp::rl
