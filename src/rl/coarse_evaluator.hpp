#pragma once
// Fast in-loop wirelength evaluator (used during RL training and for MCTS
// terminal nodes in fast mode): macro groups are pinned to their anchor
// cells, cell groups are placed by the quadratic program (legalization step
// 1), and the coarse netlist's HPWL is returned.  The full-fidelity
// evaluator (legalize + flat cell placement) lives in place/.

#include "qp/quadratic.hpp"
#include "rl/env.hpp"

namespace mp::rl {

class CoarseEvaluator : public AllocationEvaluator {
 public:
  /// Copies the coarse design; the original is never mutated.
  CoarseEvaluator(const cluster::CoarseDesign& coarse, grid::GridSpec spec,
                  qp::QpOptions qp_options = {});

  /// Density-awareness: evaluate() returns W · (1 + f · overflow / area_M)
  /// where `overflow` is the total grid-capacity excess of the allocation
  /// and area_M the total macro-group area.  The pure-QP wirelength proxy
  /// otherwise rewards packing groups beyond what legalization can place
  /// well.  0 disables (pure HPWL, the paper's letter).
  void set_overflow_penalty(double factor) { overflow_penalty_ = factor; }
  double overflow_penalty() const { return overflow_penalty_; }

  double evaluate(const std::vector<grid::CellCoord>& anchors) override;

  /// Pins the first anchors.size() macro groups; the remaining macro groups
  /// and all cell groups are placed by the QP — a smooth lower-bound-ish
  /// estimate of the best completion of this prefix.
  double evaluate_partial(const std::vector<grid::CellCoord>& anchors) override;

  /// Number of evaluations performed (for runtime accounting).
  long long evaluations() const { return evaluations_; }

  /// Value copy — all state (design, warm-start positions, options) is
  /// copyable, and evaluate() resets positions first, so a clone produces
  /// bit-identical values to the original.
  std::unique_ptr<AllocationEvaluator> clone() const override {
    return std::make_unique<CoarseEvaluator>(*this);
  }

 private:
  netlist::Design design_;
  std::vector<netlist::NodeId> macro_group_nodes_;
  std::vector<netlist::NodeId> cell_group_nodes_;
  /// Canonical cell-group start positions: the QP warm start is reset before
  /// every evaluation so identical allocations give bit-identical wirelength
  /// regardless of evaluation history (required for MCTS value consistency).
  std::vector<geometry::Point> initial_cell_positions_;
  std::vector<geometry::Point> initial_macro_positions_;
  grid::GridSpec spec_;
  qp::QpOptions qp_options_;
  double overflow_penalty_ = 0.0;
  std::vector<grid::Footprint> group_footprints_;
  double total_group_area_ = 0.0;
  long long evaluations_ = 0;
};

}  // namespace mp::rl
