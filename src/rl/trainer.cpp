#include "rl/trainer.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "util/log.hpp"

namespace mp::rl {

namespace {

// One recorded step of an episode (enough to replay the forward pass).
struct StepRecord {
  std::vector<double> sp;
  std::vector<double> availability;
  int action = 0;
};

// Samples an action from the policy; falls back to a random legal action
// when the sampled one cannot be applied (e.g. mask was all-zero and the
// unmasked softmax proposed an off-chip anchor).
int sample_action(const nn::Tensor& probs, PlacementEnv& env, util::Rng& rng) {
  if (env.allowed_actions() != nullptr) {
    // Trust-region steps (regulate): the unmasked shortcut below would
    // propose out-of-region anchors that env.step rejects, aborting the
    // episode — restrict the draw to the legal masked cells, weighted by
    // the policy.  Unmasked envs keep the original sampling path (and rng
    // stream) bit-for-bit.
    const std::vector<int> legal = env.legal_actions();
    if (legal.empty()) return -1;
    std::vector<double> weights(legal.size());
    for (std::size_t i = 0; i < legal.size(); ++i) {
      const auto p = static_cast<double>(probs[static_cast<std::size_t>(
          legal[i])]);
      weights[i] = std::max(p, 1e-12);  // keep every legal cell reachable
    }
    return legal[static_cast<std::size_t>(rng.categorical(weights))];
  }
  std::vector<double> weights(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    weights[i] = static_cast<double>(probs[i]);
  }
  int action = rng.categorical(weights);
  const grid::Footprint& fp = env.current_footprint();
  const grid::CellCoord anchor = env.spec().coord(action);
  if (anchor.gx + fp.nx <= env.spec().dim() &&
      anchor.gy + fp.ny <= env.spec().dim()) {
    return action;
  }
  const std::vector<int> legal = env.legal_actions();
  if (legal.empty()) return -1;
  return legal[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(legal.size()) - 1))];
}

// Result of one self-play rollout collected by a worker slot.
struct EpisodeData {
  bool aborted = false;
  bool cancelled = false;  ///< rollout stopped by the cancel token
  std::vector<StepRecord> steps;
  double wirelength = 0.0;
  std::vector<grid::CellCoord> anchors;
};

// Plays one episode on privately-owned resources.  Everything the episode
// touches — env copy, agent clone, evaluator clone, rng stream — belongs to
// the calling slot, so the trajectory is a pure function of the frozen
// parameters and the rng stream, independent of scheduling.
void run_episode(PlacementEnv& env, AllocationEvaluator& evaluator,
                 AgentNetwork& agent, util::Rng rng, int total_steps,
                 const util::CancelToken& cancel, EpisodeData& out) {
  env.reset();
  out.aborted = false;
  out.cancelled = false;
  out.steps.clear();
  out.steps.reserve(static_cast<std::size_t>(total_steps));
  while (!env.done()) {
    if (cancel.cancelled()) {
      out.aborted = true;
      out.cancelled = true;
      break;
    }
    StepRecord record;
    record.sp = env.placement_state();
    record.availability = env.availability();
    const AgentOutput o =
        agent.forward(record.sp, record.availability, env.current_step(),
                      total_steps, /*train=*/false);
    if (check::validate_level() >= 1) {
      check::validate_probabilities(o.probs, "rollout policy", "rl.rollout");
    }
    const int action = sample_action(o.probs, env, rng);
    if (action < 0 || !env.step(action)) {
      out.aborted = true;
      break;
    }
    record.action = action;
    out.steps.push_back(std::move(record));
  }
  if (!out.aborted) {
    out.wirelength = evaluator.evaluate(env.anchors());
    out.anchors = env.anchors();
  }
}

}  // namespace

TrainResult train_agent(PlacementEnv& env, AllocationEvaluator& evaluator,
                        AgentNetwork& agent, const TrainOptions& options) {
  TrainResult result;
  util::Rng rng(options.seed);

  RewardFn reward = options.reward;
  if (!reward) {
    result.calibration =
        calibrate_reward(env, evaluator, options.calibration_episodes, rng);
    reward = result.calibration.make_reward(options.alpha);
  }
  if (options.cancel.cancelled()) {
    result.cancelled = true;
    result.best_wirelength = std::numeric_limits<double>::infinity();
    env.reset();
    return result;
  }

  nn::Adam optimizer(agent.parameters(), options.learning_rate);
  result.best_wirelength = std::numeric_limits<double>::infinity();
  const int total_steps = env.num_steps();
  int window_fill = 0;

  // --- Parallel self-play (docs/PARALLELISM.md) --------------------------
  // Rollouts of one update window run concurrently on slot-private clones
  // of the frozen policy; gradients are then replayed serially in episode
  // order, so the parameter trajectory is identical at every pool size > 1.
  std::unique_ptr<AllocationEvaluator> probe_evaluator;
  if (options.parallel_rollouts && par::current_threads() > 1) {
    probe_evaluator = evaluator.clone();
  }
  if (probe_evaluator != nullptr) {
    struct SlotContext {
      std::unique_ptr<AgentNetwork> agent;
      std::unique_ptr<AllocationEvaluator> evaluator;
      std::optional<PlacementEnv> env;
    };
    const int nslots =
        std::min(par::current_threads(), std::max(1, options.update_window));
    std::vector<SlotContext> slots(static_cast<std::size_t>(nslots));
    for (std::size_t s = 0; s < slots.size(); ++s) {
      slots[s].agent = agent.clone();
      slots[s].evaluator =
          (s == 0) ? std::move(probe_evaluator) : evaluator.clone();
      slots[s].env.emplace(env);
    }

    int episode = 0;
    while (episode < options.episodes) {
      if (options.cancel.cancelled()) {
        result.cancelled = true;
        break;
      }
      const int window =
          std::min(options.update_window, options.episodes - episode);
      // Freeze θ for the window's rollouts.
      for (auto& s : slots) s.agent->copy_parameters_from(agent);
      std::vector<EpisodeData> data(static_cast<std::size_t>(window));
      {
        MP_OBS_SPAN("rl.rollout");
        // One chunk per slot; chunk s is the only user of slot s, and
        // every episode's trajectory depends only on its own rng stream
        // and the frozen snapshot — not on the slot that ran it.
        par::parallel_for(
            0, static_cast<std::size_t>(nslots), 1,
            [&](std::size_t lo, std::size_t hi) {
              for (std::size_t s = lo; s < hi; ++s) {
                SlotContext& ctx = slots[s];
                for (int k = static_cast<int>(s); k < window; k += nslots) {
                  run_episode(*ctx.env, *ctx.evaluator, *ctx.agent,
                              rng.split(static_cast<std::uint64_t>(episode + k)),
                              total_steps, options.cancel,
                              data[static_cast<std::size_t>(k)]);
                }
              }
            });
      }

      // A window interrupted mid-rollout is discarded whole: applying the
      // gradients of a partial window would make the cancelled trajectory
      // diverge from any uncancelled run in an uncontrolled way.
      if (options.cancel.cancelled()) {
        result.cancelled = true;
        break;
      }

      // Serial accumulation in episode order on the live network.
      MP_OBS_SPAN("rl.update");
      for (int k = 0; k < window; ++k) {
        const int e = episode + k;
        EpisodeData& d = data[static_cast<std::size_t>(k)];
        MP_OBS_COUNT("rl.episodes", 1);
        if (d.aborted) {
          MP_OBS_COUNT("rl.episodes_aborted", 1);
          util::log_warn() << "train_agent: episode " << e
                           << " aborted (no legal action)";
          continue;
        }
        const double r = reward(d.wirelength);
        if (check::validate_level() >= 1) {
          MP_CHECK_FINITE(d.wirelength, "episode wirelength");
          MP_CHECK_GE(d.wirelength, 0.0, "episode wirelength");
          MP_CHECK_FINITE(r, "episode reward (wirelength=%g)", d.wirelength);
        }
        MP_OBS_HIST("rl.reward", r);
        MP_OBS_HIST("rl.episode_wirelength", d.wirelength);
        result.episodes.push_back({r, d.wirelength});
        if (d.wirelength < result.best_wirelength) {
          result.best_wirelength = d.wirelength;
          result.best_anchors = d.anchors;
        }
        if (options.on_episode) options.on_episode(e, r, d.wirelength);

        const float inv_steps = 1.0f / static_cast<float>(
                                    std::max<std::size_t>(1, d.steps.size()));
        double value_loss = 0.0;
        for (std::size_t t = 0; t < d.steps.size(); ++t) {
          const StepRecord& record = d.steps[t];
          const AgentOutput out =
              agent.forward(record.sp, record.availability,
                            static_cast<int>(t), total_steps, /*train=*/true);
          const float advantage = static_cast<float>(r) - out.value;
          if (check::validate_level() >= 1) {
            MP_CHECK_FINITE(out.value, "value head output during replay");
            MP_CHECK_FINITE(advantage, "advantage during replay");
          }
          value_loss += static_cast<double>(advantage) * advantage;
          const nn::Tensor policy_grad = nn::policy_gradient(
              out.probs, record.action, advantage * inv_steps);
          const float value_grad = -2.0f * advantage * inv_steps;
          agent.backward(policy_grad, value_grad);
        }
        if (!d.steps.empty()) {
          MP_OBS_HIST("rl.value_loss",
                      value_loss / static_cast<double>(d.steps.size()));
        }
      }

      // One parameter update per window (fixed blocks of update_window
      // episodes; unlike the serial loop, an aborted episode does not
      // stretch the window).
      optimizer.clip_grad_norm(options.grad_clip);
      optimizer.step();
      ++result.optimizer_steps;
      MP_OBS_COUNT("rl.optimizer_steps", 1);
      if (check::validate_level() >= 2) {
        for (const nn::Parameter* p : agent.parameters()) {
          check::validate_tensor_finite(p->value, "agent parameter",
                                        "rl.optimizer_step");
        }
      }
      episode += window;
    }
    env.reset();
    return result;
  }

  for (int episode = 0; episode < options.episodes; ++episode) {
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    // --- Rollout ---
    MP_OBS_COUNT("rl.episodes", 1);
    std::optional<obs::Span> rollout_span;
    rollout_span.emplace("rl.rollout");
    env.reset();
    std::vector<StepRecord> steps;
    steps.reserve(static_cast<std::size_t>(total_steps));
    bool aborted = false;
    while (!env.done()) {
      if (options.cancel.cancelled()) {
        aborted = true;
        break;
      }
      StepRecord record;
      record.sp = env.placement_state();
      record.availability = env.availability();
      const AgentOutput out =
          agent.forward(record.sp, record.availability, env.current_step(),
                        total_steps, /*train=*/false);
      if (check::validate_level() >= 1) {
        check::validate_probabilities(out.probs, "rollout policy",
                                      "rl.rollout");
      }
      const int action = sample_action(out.probs, env, rng);
      if (action < 0 || !env.step(action)) {
        aborted = true;
        break;
      }
      record.action = action;
      steps.push_back(std::move(record));
    }
    rollout_span.reset();
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    if (aborted) {
      MP_OBS_COUNT("rl.episodes_aborted", 1);
      util::log_warn() << "train_agent: episode " << episode
                       << " aborted (no legal action)";
      continue;
    }

    const double wirelength = evaluator.evaluate(env.anchors());
    const double r = reward(wirelength);
    if (check::validate_level() >= 1) {
      MP_CHECK_FINITE(wirelength, "episode wirelength");
      MP_CHECK_GE(wirelength, 0.0, "episode wirelength");
      // A non-finite reward would feed straight into every advantage of the
      // replay below and from there into the parameter gradients.
      MP_CHECK_FINITE(r, "episode reward (wirelength=%g)", wirelength);
    }
    MP_OBS_HIST("rl.reward", r);
    MP_OBS_HIST("rl.episode_wirelength", wirelength);
    result.episodes.push_back({r, wirelength});
    if (wirelength < result.best_wirelength) {
      result.best_wirelength = wirelength;
      result.best_anchors = env.anchors();
    }
    if (options.on_episode) options.on_episode(episode, r, wirelength);

    // --- Gradient accumulation (replay with train-mode forwards) ---
    MP_OBS_SPAN("rl.update");
    const float inv_steps =
        1.0f / static_cast<float>(std::max<std::size_t>(1, steps.size()));
    double value_loss = 0.0;
    for (std::size_t t = 0; t < steps.size(); ++t) {
      const StepRecord& record = steps[t];
      const AgentOutput out =
          agent.forward(record.sp, record.availability, static_cast<int>(t),
                        total_steps, /*train=*/true);
      const float advantage = static_cast<float>(r) - out.value;  // Eq. (6)
      if (check::validate_level() >= 1) {
        MP_CHECK_FINITE(out.value, "value head output during replay");
        MP_CHECK_FINITE(advantage, "advantage during replay");
      }
      value_loss += static_cast<double>(advantage) * advantage;
      const nn::Tensor policy_grad = nn::policy_gradient(
          out.probs, record.action, advantage * inv_steps);       // Eq. (5)
      const float value_grad = -2.0f * advantage * inv_steps;     // Eq. (7)
      agent.backward(policy_grad, value_grad);
    }
    if (!steps.empty()) {
      // Mean squared advantage — the value-head loss the update descends.
      MP_OBS_HIST("rl.value_loss", value_loss / static_cast<double>(steps.size()));
    }
    ++window_fill;

    // --- Parameter update every `update_window` episodes (paper: 30) ---
    if (window_fill >= options.update_window ||
        episode + 1 == options.episodes) {
      optimizer.clip_grad_norm(options.grad_clip);
      optimizer.step();
      ++result.optimizer_steps;
      MP_OBS_COUNT("rl.optimizer_steps", 1);
      window_fill = 0;
      if (check::validate_level() >= 2) {
        // Exhaustive mode: the update must leave every weight finite, or the
        // next forward silently produces garbage policies.
        for (const nn::Parameter* p : agent.parameters()) {
          check::validate_tensor_finite(p->value, "agent parameter",
                                        "rl.optimizer_step");
        }
      }
    }
  }
  env.reset();
  return result;
}

double play_greedy_episode(PlacementEnv& env, AllocationEvaluator& evaluator,
                           AgentNetwork& agent,
                           std::vector<grid::CellCoord>& anchors_out) {
  env.reset();
  const int total_steps = env.num_steps();
  while (!env.done()) {
    const std::vector<double> sp = env.placement_state();
    const std::vector<double> availability = env.availability();
    const AgentOutput out = agent.forward(sp, availability, env.current_step(),
                                          total_steps, /*train=*/false);
    // Argmax over applicable actions.
    int best = -1;
    float best_p = -1.0f;
    const grid::Footprint& fp = env.current_footprint();
    for (int a = 0; a < env.spec().num_cells(); ++a) {
      const grid::CellCoord anchor = env.spec().coord(a);
      if (anchor.gx + fp.nx > env.spec().dim() ||
          anchor.gy + fp.ny > env.spec().dim()) {
        continue;
      }
      if (out.probs[static_cast<std::size_t>(a)] > best_p) {
        best_p = out.probs[static_cast<std::size_t>(a)];
        best = a;
      }
    }
    if (best < 0 || !env.step(best)) {
      // Should not happen (every design fits); bail with the worst value.
      anchors_out.clear();
      return std::numeric_limits<double>::infinity();
    }
  }
  anchors_out = env.anchors();
  const double w = evaluator.evaluate(anchors_out);
  env.reset();
  return w;
}

}  // namespace mp::rl
