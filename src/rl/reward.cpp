#include "rl/reward.hpp"

#include <algorithm>
#include <limits>

namespace mp::rl {

RewardFn RewardCalibration::make_reward(double alpha) const {
  const double range = std::max(1e-12, wl_max - wl_min);
  const double mean = wl_mean;
  return [range, mean, alpha](double wirelength) {
    return (-wirelength + mean) / range + alpha;
  };
}

RewardCalibration calibrate_reward(PlacementEnv& env,
                                   AllocationEvaluator& evaluator, int episodes,
                                   util::Rng& rng) {
  RewardCalibration cal;
  cal.wl_max = -std::numeric_limits<double>::infinity();
  cal.wl_min = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  int completed = 0;
  for (int e = 0; e < episodes; ++e) {
    env.reset();
    bool ok = true;
    while (!env.done()) {
      const std::vector<int> legal = env.legal_actions();
      if (legal.empty()) {
        ok = false;
        break;
      }
      const int pick = legal[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(legal.size()) - 1))];
      env.step(pick);
    }
    if (!ok) continue;
    const double w = evaluator.evaluate(env.anchors());
    cal.wl_max = std::max(cal.wl_max, w);
    cal.wl_min = std::min(cal.wl_min, w);
    sum += w;
    ++completed;
  }
  if (completed == 0) {
    // Degenerate environment; keep a neutral calibration.
    cal.wl_max = 1.0;
    cal.wl_min = 0.0;
    cal.wl_mean = 0.5;
  } else {
    cal.wl_mean = sum / completed;
    if (cal.wl_max <= cal.wl_min) cal.wl_max = cal.wl_min + 1.0;
  }
  env.reset();
  return cal;
}

RewardFn negative_wirelength_reward() {
  return [](double wirelength) { return -wirelength; };
}

}  // namespace mp::rl
