#include "infer/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/env.hpp"

namespace mp::infer {

EngineOptions EngineOptions::from_env(obs::Registry* registry) {
  EngineOptions o;
  o.max_batch = std::max(1, util::env_int("MP_INFER_BATCH", o.max_batch));
  o.max_wait_us = std::max(0, util::env_int("MP_INFER_WAIT_US", o.max_wait_us));
  o.threads = std::clamp(util::env_int("MP_INFER_THREADS", o.threads), 1, 16);
  o.registry = registry;
  return o;
}

InferenceEngine::InferenceEngine(EngineOptions options)
    : options_(std::move(options)) {
  const int threads = std::max(1, options_.threads);
  executors_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : executors_) t.join();
}

SnapshotId InferenceEngine::acquire(rl::AgentNetwork& network) {
  const SnapshotId id = network.parameter_hash();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = snapshots_.find(id);
    if (it != snapshots_.end()) {
      ++it->second->refs;
      return id;
    }
  }
  // Clone outside the lock — a full parameter copy shouldn't stall the
  // request path.  A racing acquire of the same hash may get there first;
  // the clone is then redundant and dropped (both clones are bit-identical
  // by the hash contract).
  std::unique_ptr<rl::AgentNetwork> clone = network.clone();
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Snapshot>& slot = snapshots_[id];
    if (slot == nullptr) {
      slot = std::make_shared<Snapshot>();
      slot->network = std::move(clone);
    }
    ++slot->refs;
    live = snapshots_.size();
  }
  if (options_.registry != nullptr) {
    options_.registry->gauge("infer.snapshots")
        .set(static_cast<double>(live));
  }
  return id;
}

void InferenceEngine::release(SnapshotId id) {
  std::shared_ptr<Snapshot> doomed;
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = snapshots_.find(id);
    if (it == snapshots_.end()) return;
    if (--it->second->refs <= 0) {
      doomed = std::move(it->second);  // destroy outside the lock
      snapshots_.erase(it);
    }
    live = snapshots_.size();
  }
  if (options_.registry != nullptr) {
    options_.registry->gauge("infer.snapshots")
        .set(static_cast<double>(live));
  }
}

std::vector<rl::AgentOutput> InferenceEngine::forward(
    SnapshotId id, std::vector<rl::NetInput> inputs) {
  if (inputs.empty()) return {};
  auto request = std::make_unique<Request>();
  request->snapshot = id;
  request->inputs = std::move(inputs);
  std::future<std::vector<rl::AgentOutput>> result =
      request->done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("InferenceEngine: forward() after shutdown");
    }
    if (snapshots_.find(id) == snapshots_.end()) {
      throw std::runtime_error("InferenceEngine: unknown snapshot");
    }
    queue_.push_back(std::move(request));
    ++stats_.requests;
  }
  if (options_.registry != nullptr) {
    options_.registry->counter("infer.requests").add(1);
  }
  cv_.notify_all();
  return result.get();
}

InferenceEngine::Stats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.snapshots = snapshots_.size();
  return s;
}

void InferenceEngine::executor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // drained
      continue;
    }

    // The head-of-line request picks the snapshot this batch runs on.
    const SnapshotId sid = queue_.front()->snapshot;
    const std::size_t max_batch = static_cast<std::size_t>(options_.max_batch);
    // Runs with `lock` held (executor_loop owns mutex_ outside the
    // unlocked forward section below).
    const auto pending_samples = [&] {
      std::size_t total = 0;
      for (const std::unique_ptr<Request>& r : queue_) {
        if (r->snapshot == sid) total += r->inputs.size();
      }
      return total;
    };

    if (options_.max_wait_us > 0 && pending_samples() < max_batch) {
      // Coalescing window: hold the batch open briefly for requests from
      // other slots/jobs.  Affects only when a batch runs, never what it
      // computes — per-sample bit-identity makes grouping result-neutral.
      const auto deadline =
          // mplint: allow(wall-clock): coalescing wait timer; bounds batching latency only, batch composition cannot affect results
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.max_wait_us);
      while (!stopping_ && pending_samples() < max_batch) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
    }

    // Gather the batch: head request unconditionally (even oversized —
    // requests never split), then same-snapshot requests while they fit.
    std::vector<std::unique_ptr<Request>> batch;
    std::size_t samples = 0;
    for (auto it = queue_.begin(); it != queue_.end() && samples < max_batch;) {
      if ((*it)->snapshot == sid &&
          (samples == 0 || samples + (*it)->inputs.size() <= max_batch)) {
        samples += (*it)->inputs.size();
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }

    auto snap_it = snapshots_.find(sid);
    const std::shared_ptr<Snapshot> snap =
        snap_it != snapshots_.end() ? snap_it->second : nullptr;
    ++stats_.batches;
    stats_.samples += samples;
    if (batch.size() > 1) stats_.coalesced += batch.size();
    // mplint: allow(manual-unlock): the batched forward below must run
    // outside the queue lock (it is the long pole; holding the lock would
    // serialize producers against it), but this executor loop iteration
    // continues afterwards, so scoping the guard tighter isn't possible.
    lock.unlock();

    if (options_.registry != nullptr) {
      options_.registry->counter("infer.batches").add(1);
      options_.registry->histogram("infer.batch_size")
          .record(static_cast<double>(samples));
      if (batch.size() > 1) {
        options_.registry->counter("infer.coalesced")
            .add(static_cast<long long>(batch.size()));
      }
    }

    if (snap == nullptr) {
      auto err = std::make_exception_ptr(std::runtime_error(
          "InferenceEngine: snapshot released with requests in flight"));
      for (std::unique_ptr<Request>& r : batch) r->done.set_exception(err);
    } else {
      std::vector<rl::NetInput> all;
      all.reserve(samples);
      for (std::unique_ptr<Request>& r : batch) {
        for (rl::NetInput& in : r->inputs) all.push_back(std::move(in));
      }
      std::vector<rl::AgentOutput> outputs;
      {
        std::lock_guard<std::mutex> exec_lock(snap->exec);
        outputs = snap->network->forward_many(all);
      }
      std::size_t cursor = 0;
      for (std::unique_ptr<Request>& r : batch) {
        std::vector<rl::AgentOutput> part;
        part.reserve(r->inputs.size());
        for (std::size_t i = 0; i < r->inputs.size(); ++i) {
          part.push_back(std::move(outputs[cursor++]));
        }
        r->done.set_value(std::move(part));
      }
    }
    lock.lock();
  }
}

}  // namespace mp::infer
