#pragma once
// Shared batched inference engine (docs/INFERENCE.md).  One engine serves
// every consumer of the agent network on the process — all eval slots of a
// batched MCTS search and all concurrent service jobs — by coalescing their
// forward requests into true batched forwards: one N×C×H×W pass (one im2col
// + one GEMM per conv layer) through rl::AgentNetwork::forward_many.
//
// Networks enter the engine as immutable *snapshots* keyed by parameter
// content hash (rl::AgentNetwork::parameter_hash): acquire() clones the
// caller's network once per distinct parameter state and refcounts it, so N
// jobs running the same pre-trained weights share one snapshot instead of N
// full per-slot clones, and a job that trains between searches naturally
// gets a fresh snapshot per update.  release() drops the reference;
// snapshots die with their last holder.
//
// Request path: forward() enqueues the caller's samples and blocks on a
// future.  Executor threads pop the head request, wait up to max_wait_us
// for more requests against the same snapshot (up to max_batch samples
// total), run one forward_many, and complete every request in the batch.
// Coalescing is *result-neutral by construction*: forward_many is
// bit-identical per sample to the single-sample forward, so how requests
// get grouped — across eval slots, across jobs, or not at all — can never
// change any output.  Only latency is wall-clock dependent, which is why
// the coalescing wait timer carries the one justified mplint wall-clock
// allowance in this directory.
//
// Telemetry (per engine, into the registry passed via EngineOptions):
//   infer.batch_size   histogram — samples per executed forward
//   infer.requests     counter   — forward() calls admitted
//   infer.batches      counter   — batched forwards executed
//   infer.coalesced    counter   — requests that shared a forward with
//                                  at least one other request
//   infer.snapshots    gauge     — live snapshots

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "obs/obs.hpp"
#include "rl/agent.hpp"

namespace mp::infer {

/// Identifies an acquired snapshot: the parameter content hash of the
/// network it was cloned from.
using SnapshotId = std::uint64_t;

struct EngineOptions {
  /// Max samples per batched forward; a single oversized request still runs
  /// whole (requests never split across forwards).
  int max_batch = 32;
  /// How long the executor holds an under-full batch open for more
  /// requests.  0 disables coalescing waits: every batch runs as soon as
  /// the executor reaches it.
  int max_wait_us = 200;
  /// Executor threads.  One is enough for correctness (and keeps every
  /// forward on a warm core); more overlap forwards of distinct snapshots.
  int threads = 1;
  /// Where infer.* metrics go (e.g. the service SLO registry, so the
  /// `metrics` verb surfaces engine health).  May be null; must outlive
  /// the engine.
  obs::Registry* registry = nullptr;

  /// Reads MP_INFER_BATCH / MP_INFER_WAIT_US / MP_INFER_THREADS over the
  /// defaults above.
  static EngineOptions from_env(obs::Registry* registry = nullptr);
};

class InferenceEngine {
 public:
  explicit InferenceEngine(EngineOptions options = {});
  /// Finishes every queued request, then joins the executors.  Callers must
  /// not be blocked in forward() when the destructor runs (the service
  /// destroys its engine only after the scheduler drained its jobs).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Registers `network`'s current parameters as a snapshot (content-hash
  /// dedup: an existing snapshot with the same hash is reused) and takes a
  /// reference on it.  The caller's network is cloned, not retained — it may
  /// train on immediately without affecting the snapshot.
  SnapshotId acquire(rl::AgentNetwork& network) MP_EXCLUDES(mutex_);

  /// Drops one reference; the snapshot is destroyed when the count hits
  /// zero.  Callers must not release while one of their forwards is still
  /// pending.
  void release(SnapshotId id) MP_EXCLUDES(mutex_);

  /// Blocking batched forward through snapshot `id`: returns one output per
  /// input, bit-identical to AgentNetwork::forward(..., train=false) on the
  /// snapshot's parameters regardless of what other requests it shared a
  /// batch with.  Throws when `id` was never acquired/already fully
  /// released or the engine is shutting down.  Thread-safe; called
  /// concurrently from MCTS eval slots and service workers.
  std::vector<rl::AgentOutput> forward(SnapshotId id,
                                       std::vector<rl::NetInput> inputs)
      MP_EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t requests = 0;   ///< forward() calls admitted
    std::uint64_t batches = 0;    ///< batched forwards executed
    std::uint64_t coalesced = 0;  ///< requests that shared a forward
    std::uint64_t samples = 0;    ///< samples across all forwards
    std::size_t snapshots = 0;    ///< live snapshots right now
  };
  Stats stats() const MP_EXCLUDES(mutex_);

  const EngineOptions& options() const { return options_; }

 private:
  /// An immutable network snapshot.  shared_ptr so an executor mid-forward
  /// keeps it alive across a concurrent release of the last reference.
  struct Snapshot {
    std::unique_ptr<rl::AgentNetwork> network;
    int refs = 0;
    /// Serializes forward_many per snapshot: the batched layer paths are
    /// read-only today, but the layer contract doesn't promise it for
    /// every future override, and one forward per snapshot at a time is
    /// exactly the batching model anyway.
    std::mutex exec MP_GUARDS(network);
  };

  struct Request {
    SnapshotId snapshot = 0;
    std::vector<rl::NetInput> inputs;
    std::promise<std::vector<rl::AgentOutput>> done;
  };

  void executor_loop() MP_EXCLUDES(mutex_);

  const EngineOptions options_;

  mutable std::mutex mutex_ MP_GUARDS(queue_, snapshots_, stats_, stopping_);
  /// Notified on new requests and on stop.
  std::condition_variable cv_ MP_GUARDED_BY(mutex_);
  std::deque<std::unique_ptr<Request>> queue_ MP_GUARDED_BY(mutex_);
  /// Ordered map: snapshot iteration (stats, shutdown) is hash-ordered,
  /// never insertion/hash-bucket ordered.
  std::map<SnapshotId, std::shared_ptr<Snapshot>> snapshots_
      MP_GUARDED_BY(mutex_);
  Stats stats_ MP_GUARDED_BY(mutex_);
  bool stopping_ MP_GUARDED_BY(mutex_) = false;
  /// Spawned in the constructor, joined in the destructor; immutable in
  /// between.
  std::vector<std::thread> executors_;
};

}  // namespace mp::infer
