#include "netlist/validate.hpp"

#include <cmath>
#include <set>
#include <tuple>
#include <sstream>

namespace mp::netlist {

namespace {

std::string format(const char* what, const std::string& who,
                   const std::string& detail) {
  std::ostringstream os;
  os << what << " [" << who << "]";
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

}  // namespace

ValidationReport validate_design(const Design& design,
                                 const ValidationOptions& options) {
  ValidationReport report;

  if (design.region().w <= 0.0 || design.region().h <= 0.0) {
    report.errors.push_back("placement region has non-positive extent");
  }

  // Nodes.
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    const Node& node = design.node(static_cast<NodeId>(i));
    if (node.kind != NodeKind::kPad &&
        (node.width <= 0.0 || node.height <= 0.0)) {
      report.errors.push_back(
          format("non-positive dimensions", node.name,
                 std::to_string(node.width) + " x " +
                     std::to_string(node.height)));
    }
    if (!std::isfinite(node.position.x) || !std::isfinite(node.position.y)) {
      report.errors.push_back(format("non-finite position", node.name, ""));
    }
  }

  // Nets.
  for (std::size_t n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(static_cast<NetId>(n));
    if (net.weight < 0.0) {
      report.errors.push_back(format("negative net weight", net.name, ""));
    }
    std::set<std::tuple<NodeId, double, double>> seen;
    for (const PinRef& pin : net.pins) {
      if (pin.node < 0 ||
          static_cast<std::size_t>(pin.node) >= design.num_nodes()) {
        report.errors.push_back(
            format("net references invalid node", net.name,
                   "node id " + std::to_string(pin.node)));
        continue;
      }
      if (!seen.insert({pin.node, pin.dx, pin.dy}).second) {
        report.warnings.push_back(
            format("duplicate pin", net.name,
                   design.node(pin.node).name + " at same offset"));
      }
    }
    if (options.check_connectivity && net.pins.size() < 2) {
      report.warnings.push_back(format("net with fewer than 2 pins", net.name, ""));
    }
  }

  // Connectivity of movable macros.
  if (options.check_connectivity) {
    const auto& adjacency = design.node_nets();
    for (NodeId id : design.movable_macros()) {
      if (adjacency[static_cast<std::size_t>(id)].empty()) {
        report.warnings.push_back(
            format("disconnected movable macro", design.node(id).name, ""));
      }
    }
  }

  // Geometry.
  if (options.check_region_containment) {
    for (std::size_t i = 0; i < design.num_nodes(); ++i) {
      const Node& node = design.node(static_cast<NodeId>(i));
      if (node.kind == NodeKind::kPad) continue;
      if (!design.region().contains(node.rect())) {
        report.warnings.push_back(
            format("node outside placement region", node.name, ""));
      }
    }
  }
  if (options.check_macro_overlap) {
    const double overlap = design.macro_overlap_area();
    if (overlap > options.overlap_tolerance * design.region().area()) {
      report.warnings.push_back(
          format("macro overlap", design.name(),
                 "total area " + std::to_string(overlap)));
    }
  }
  return report;
}

}  // namespace mp::netlist
