#include "netlist/design.hpp"

#include <cassert>

namespace mp::netlist {

NodeId Design::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  assert(name_index_.find(node.name) == name_index_.end() &&
         "duplicate node name");
  name_index_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  invalidate_caches();
  return id;
}

NetId Design::add_net(Net net) {
  for (const PinRef& pin : net.pins) {
    assert(pin.node >= 0 &&
           static_cast<std::size_t>(pin.node) < nodes_.size() &&
           "net references unknown node");
    (void)pin;
  }
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(std::move(net));
  adjacency_valid_ = false;
  return id;
}

std::optional<NodeId> Design::find_node(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

void Design::invalidate_caches() {
  index_valid_ = false;
  adjacency_valid_ = false;
}

namespace {
void build_kind_index(const std::vector<Node>& nodes,
                      std::vector<NodeId>& macros,
                      std::vector<NodeId>& movable_macros,
                      std::vector<NodeId>& std_cells,
                      std::vector<NodeId>& pads) {
  macros.clear();
  movable_macros.clear();
  std_cells.clear();
  pads.clear();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    switch (nodes[i].kind) {
      case NodeKind::kMacro:
        macros.push_back(id);
        if (!nodes[i].fixed) movable_macros.push_back(id);
        break;
      case NodeKind::kStdCell:
        std_cells.push_back(id);
        break;
      case NodeKind::kPad:
        pads.push_back(id);
        break;
    }
  }
}
}  // namespace

const std::vector<NodeId>& Design::macros() const {
  if (!index_valid_) {
    build_kind_index(nodes_, macros_, movable_macros_, std_cells_, pads_);
    index_valid_ = true;
  }
  return macros_;
}

const std::vector<NodeId>& Design::movable_macros() const {
  macros();  // ensure index
  return movable_macros_;
}

const std::vector<NodeId>& Design::std_cells() const {
  macros();
  return std_cells_;
}

const std::vector<NodeId>& Design::pads() const {
  macros();
  return pads_;
}

const std::vector<std::vector<NetId>>& Design::node_nets() const {
  if (!adjacency_valid_) {
    node_nets_.assign(nodes_.size(), {});
    for (std::size_t n = 0; n < nets_.size(); ++n) {
      for (const PinRef& pin : nets_[n].pins) {
        node_nets_[static_cast<std::size_t>(pin.node)].push_back(
            static_cast<NetId>(n));
      }
    }
    adjacency_valid_ = true;
  }
  return node_nets_;
}

geometry::Point Design::pin_position(const PinRef& pin) const {
  const Node& owner = node(pin.node);
  return {owner.position.x + pin.dx, owner.position.y + pin.dy};
}

double Design::net_hpwl(NetId id) const {
  const Net& n = net(id);
  if (n.pins.size() < 2) return 0.0;
  geometry::BoundingBox box;
  for (const PinRef& pin : n.pins) box.add(pin_position(pin));
  return box.half_perimeter();
}

double Design::total_hpwl() const {
  double total = 0.0;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    total += nets_[i].weight * net_hpwl(static_cast<NetId>(i));
  }
  return total;
}

DesignStats Design::stats() const {
  DesignStats s;
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case NodeKind::kMacro:
        if (n.fixed) ++s.preplaced_macros;
        else ++s.movable_macros;
        s.macro_area += n.area();
        break;
      case NodeKind::kStdCell:
        ++s.standard_cells;
        s.cell_area += n.area();
        break;
      case NodeKind::kPad:
        ++s.io_pads;
        break;
    }
  }
  s.nets = static_cast<int>(nets_.size());
  s.region_area = region_.area();
  return s;
}

bool Design::all_inside_region() const {
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kPad) continue;  // pads sit on the boundary ring
    if (!region_.contains(n.rect())) return false;
  }
  return true;
}

double Design::macro_overlap_area() const {
  const auto& macro_ids = macros();
  double total = 0.0;
  for (std::size_t i = 0; i < macro_ids.size(); ++i) {
    const geometry::Rect a = node(macro_ids[i]).rect();
    for (std::size_t j = i + 1; j < macro_ids.size(); ++j) {
      total += geometry::overlap_area(a, node(macro_ids[j]).rect());
    }
  }
  return total;
}

}  // namespace mp::netlist
