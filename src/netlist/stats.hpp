#pragma once
// Connectivity statistics shared by clustering and the QP net models.

#include <vector>

#include "netlist/design.hpp"

namespace mp::netlist {

/// Pairwise node connectivity: number of (weighted) nets shared by two nodes.
/// Stored sparsely as adjacency lists over nodes that actually connect.
class ConnectivityMap {
 public:
  /// Builds connectivity restricted to `nodes_of_interest` (e.g. macros
  /// only).  Nets larger than `max_net_degree` are skipped — giant nets
  /// (clock/reset) carry no locality information and would densify the map.
  ConnectivityMap(const Design& design, const std::vector<NodeId>& nodes_of_interest,
                  std::size_t max_net_degree = 64);

  /// Weighted connection count between two nodes of interest (0 when absent
  /// or when either node is not of interest).
  double between(NodeId a, NodeId b) const;

  /// Neighbors of `a` among the nodes of interest, with weights.
  const std::vector<std::pair<NodeId, double>>& neighbors(NodeId a) const;

 private:
  std::vector<int> dense_index_;  // node id -> local index or -1
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency_;
  std::vector<std::pair<NodeId, double>> empty_;
};

}  // namespace mp::netlist
