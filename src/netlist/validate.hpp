#pragma once
// Design sanity validation: structural checks a reader/generator/placer can
// run before and after operating on a design.  Returns human-readable issue
// descriptions instead of aborting, so callers can decide severity.

#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace mp::netlist {

struct ValidationOptions {
  bool check_region_containment = true;  ///< movable nodes inside the region
  bool check_macro_overlap = false;      ///< only meaningful post-legalization
  bool check_connectivity = true;        ///< no dangling single-pin nets etc.
  double overlap_tolerance = 1e-9;       ///< relative to region area
};

struct ValidationReport {
  std::vector<std::string> errors;    ///< structural problems
  std::vector<std::string> warnings;  ///< suspicious but workable

  bool ok() const { return errors.empty(); }
};

/// Validates `design`:
///   errors   — nets referencing out-of-range nodes, non-positive node
///              dimensions, zero-area placement region, duplicate pins on a
///              net referencing the same node at the same offset;
///   warnings — single-pin nets, disconnected movable macros, movable nodes
///              outside the region (when enabled), macro overlap above the
///              tolerance (when enabled).
ValidationReport validate_design(const Design& design,
                                 const ValidationOptions& options = {});

}  // namespace mp::netlist
