#pragma once
// Helpers for hierarchical instance paths ("top/core0/alu/mul").  The macro
// clustering score Γ (Eq. (1)) rewards merging groups whose members share a
// long common hierarchy prefix.

#include <string>
#include <vector>

namespace mp::netlist {

/// Splits a path on '/' (empty components dropped).
std::vector<std::string> split_hierarchy(const std::string& path);

/// Number of leading path components shared by two hierarchy paths.
/// "top/a/b" vs "top/a/c" -> 2;  "" vs anything -> 0.
int common_hierarchy_depth(const std::string& a, const std::string& b);

/// Depth (component count) of one path.
int hierarchy_depth(const std::string& path);

/// Joins components back into a path.
std::string join_hierarchy(const std::vector<std::string>& components);

}  // namespace mp::netlist
