#include "netlist/hierarchy.hpp"

#include <algorithm>

namespace mp::netlist {

std::vector<std::string> split_hierarchy(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t end = path.find('/', begin);
    const std::size_t stop = (end == std::string::npos) ? path.size() : end;
    if (stop > begin) parts.push_back(path.substr(begin, stop - begin));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return parts;
}

int common_hierarchy_depth(const std::string& a, const std::string& b) {
  const auto pa = split_hierarchy(a);
  const auto pb = split_hierarchy(b);
  const std::size_t limit = std::min(pa.size(), pb.size());
  int depth = 0;
  for (std::size_t i = 0; i < limit; ++i) {
    if (pa[i] != pb[i]) break;
    ++depth;
  }
  return depth;
}

int hierarchy_depth(const std::string& path) {
  return static_cast<int>(split_hierarchy(path).size());
}

std::string join_hierarchy(const std::vector<std::string>& components) {
  std::string out;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i > 0) out += '/';
    out += components[i];
  }
  return out;
}

}  // namespace mp::netlist
