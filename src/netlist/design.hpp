#pragma once
// Flat mixed-size netlist model: macros, standard cells and I/O pads
// connected by multi-pin nets.  This is the input to every placer in the
// library and the object on which HPWL (the paper's quality metric) is
// evaluated.

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/geometry.hpp"

namespace mp::netlist {

using NodeId = int;
using NetId = int;
constexpr NodeId kInvalidNode = -1;

enum class NodeKind { kMacro, kStdCell, kPad };

/// A placeable (or fixed) rectangular object.
struct Node {
  std::string name;
  NodeKind kind = NodeKind::kStdCell;
  double width = 0.0;
  double height = 0.0;
  geometry::Point position;  ///< lower-left corner
  bool fixed = false;        ///< preplaced macros and pads are fixed
  /// Hierarchical instance path ("top/core0/alu/mul"); empty when the design
  /// carries no hierarchy (e.g. the ICCAD04-style benchmarks).
  std::string hierarchy;

  geometry::Rect rect() const {
    return geometry::Rect(position.x, position.y, width, height);
  }
  geometry::Point center() const {
    return {position.x + width / 2.0, position.y + height / 2.0};
  }
  double area() const { return width * height; }
};

/// A pin is an offset from its owner node's lower-left corner.
struct PinRef {
  NodeId node = kInvalidNode;
  double dx = 0.0;
  double dy = 0.0;
};

struct Net {
  std::string name;
  double weight = 1.0;
  std::vector<PinRef> pins;
};

/// Aggregate counts mirroring the columns of the paper's Tables II/III.
struct DesignStats {
  int movable_macros = 0;
  int preplaced_macros = 0;
  int io_pads = 0;
  int standard_cells = 0;
  int nets = 0;
  double macro_area = 0.0;
  double cell_area = 0.0;
  double region_area = 0.0;
};

/// Owning container for one design.  NodeIds and NetIds are dense indices
/// into the internal vectors and remain stable after construction (nodes and
/// nets are append-only).
class Design {
 public:
  Design() = default;
  Design(std::string name, geometry::Rect region)
      : name_(std::move(name)), region_(region) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const geometry::Rect& region() const { return region_; }
  void set_region(const geometry::Rect& region) { region_ = region; }

  /// Appends a node; returns its id.  Names should be unique (enforced in
  /// debug builds); lookup by name is available via find_node().
  NodeId add_node(Node node);

  /// Appends a net referencing existing nodes; returns its id.
  NetId add_net(Net net);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Node id by name, or nullopt when absent.
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Ids of movable macros, all macros, std cells, pads (computed lazily and
  /// cached; invalidated by add_node).
  const std::vector<NodeId>& macros() const;
  const std::vector<NodeId>& movable_macros() const;
  const std::vector<NodeId>& std_cells() const;
  const std::vector<NodeId>& pads() const;

  /// Nets incident to each node (lazy, invalidated by add_net/add_node).
  const std::vector<std::vector<NetId>>& node_nets() const;

  /// Absolute location of one pin.
  geometry::Point pin_position(const PinRef& pin) const;

  /// Half-perimeter wirelength of one net (0 for nets with < 2 pins).
  double net_hpwl(NetId id) const;

  /// Weighted total HPWL over all nets — the paper's W.
  double total_hpwl() const;

  DesignStats stats() const;

  /// True when every movable node lies fully inside the placement region.
  bool all_inside_region() const;

  /// Sum of pairwise overlap areas between macros (0 for a legal placement).
  double macro_overlap_area() const;

 private:
  void invalidate_caches();

  std::string name_;
  geometry::Rect region_;
  std::vector<Node> nodes_;
  std::vector<Net> nets_;
  std::unordered_map<std::string, NodeId> name_index_;

  mutable bool index_valid_ = false;
  mutable std::vector<NodeId> macros_;
  mutable std::vector<NodeId> movable_macros_;
  mutable std::vector<NodeId> std_cells_;
  mutable std::vector<NodeId> pads_;
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<NetId>> node_nets_;
};

}  // namespace mp::netlist
