#include "netlist/stats.hpp"

#include <algorithm>
#include <map>

namespace mp::netlist {

ConnectivityMap::ConnectivityMap(const Design& design,
                                 const std::vector<NodeId>& nodes_of_interest,
                                 std::size_t max_net_degree) {
  dense_index_.assign(design.num_nodes(), -1);
  for (std::size_t i = 0; i < nodes_of_interest.size(); ++i) {
    dense_index_[static_cast<std::size_t>(nodes_of_interest[i])] =
        static_cast<int>(i);
  }
  adjacency_.assign(nodes_of_interest.size(), {});

  // Accumulate weights per (local_a, local_b) pair.
  std::map<std::pair<int, int>, double> weights;
  for (const Net& net : design.nets()) {
    if (net.pins.size() < 2 || net.pins.size() > max_net_degree) continue;
    // Collect distinct nodes of interest on this net.
    std::vector<int> locals;
    for (const PinRef& pin : net.pins) {
      const int local = dense_index_[static_cast<std::size_t>(pin.node)];
      if (local >= 0) locals.push_back(local);
    }
    std::sort(locals.begin(), locals.end());
    locals.erase(std::unique(locals.begin(), locals.end()), locals.end());
    if (locals.size() < 2) continue;
    // Clique weight 2/k keeps large nets from dominating.
    const double w =
        net.weight * 2.0 / static_cast<double>(locals.size());
    for (std::size_t a = 0; a < locals.size(); ++a) {
      for (std::size_t b = a + 1; b < locals.size(); ++b) {
        weights[{locals[a], locals[b]}] += w;
      }
    }
  }

  for (const auto& [pair, w] : weights) {
    const auto [a, b] = pair;
    adjacency_[static_cast<std::size_t>(a)].emplace_back(
        nodes_of_interest[static_cast<std::size_t>(b)], w);
    adjacency_[static_cast<std::size_t>(b)].emplace_back(
        nodes_of_interest[static_cast<std::size_t>(a)], w);
  }
}

double ConnectivityMap::between(NodeId a, NodeId b) const {
  if (a < 0 || static_cast<std::size_t>(a) >= dense_index_.size()) return 0.0;
  const int local = dense_index_[static_cast<std::size_t>(a)];
  if (local < 0) return 0.0;
  for (const auto& [nbr, w] : adjacency_[static_cast<std::size_t>(local)]) {
    if (nbr == b) return w;
  }
  return 0.0;
}

const std::vector<std::pair<NodeId, double>>& ConnectivityMap::neighbors(
    NodeId a) const {
  if (a < 0 || static_cast<std::size_t>(a) >= dense_index_.size()) return empty_;
  const int local = dense_index_[static_cast<std::size_t>(a)];
  if (local < 0) return empty_;
  return adjacency_[static_cast<std::size_t>(local)];
}

}  // namespace mp::netlist
