#include "check/validators.hpp"

#include <cmath>

#include "geometry/geometry.hpp"

namespace mp::check {

using netlist::Design;
using netlist::NodeId;

void validate_placement_legal(const Design& design, const char* where,
                              double overlap_tolerance) {
  const int level = validate_level();
  if (level < 1) return;

  const double region_area = std::max(1.0, design.region().area());
  const double overlap = design.macro_overlap_area();
  MP_CHECK_FINITE(overlap, "macro overlap area at %s", where);
  MP_CHECK_LE(overlap / region_area, overlap_tolerance,
              "macro overlap above tolerance at %s", where);
  for (NodeId id : design.movable_macros()) {
    const netlist::Node& node = design.node(id);
    MP_CHECK(design.region().contains(node.rect()),
             "macro \"%s\" outside the region at %s", node.name.c_str(), where);
  }

  if (level < 2) return;
  // Exhaustive: name the first offending pair / node.
  const std::vector<NodeId>& macros = design.macros();
  const geometry::Rect region = design.region();
  for (std::size_t i = 0; i < macros.size(); ++i) {
    const netlist::Node& a = design.node(macros[i]);
    MP_CHECK_FINITE(a.position.x, "macro \"%s\" x at %s", a.name.c_str(), where);
    MP_CHECK_FINITE(a.position.y, "macro \"%s\" y at %s", a.name.c_str(), where);
    if (!a.fixed) {
      MP_CHECK(region.contains(a.rect()),
               "macro \"%s\" [%g,%g)x[%g,%g) leaves the region at %s",
               a.name.c_str(), a.rect().left(), a.rect().right(),
               a.rect().bottom(), a.rect().top(), where);
    }
    for (std::size_t j = i + 1; j < macros.size(); ++j) {
      const netlist::Node& b = design.node(macros[j]);
      const double pair_overlap = geometry::overlap_area(a.rect(), b.rect());
      MP_CHECK_LE(pair_overlap / region_area, overlap_tolerance,
                  "macros \"%s\" and \"%s\" overlap at %s", a.name.c_str(),
                  b.name.c_str(), where);
    }
  }
}

void validate_positions_finite(const Design& design, const char* where) {
  const int level = validate_level();
  if (level < 1) return;

  MP_CHECK_FINITE(design.total_hpwl(), "total HPWL at %s", where);
  for (NodeId id : design.movable_macros()) {
    const netlist::Node& node = design.node(id);
    MP_CHECK_FINITE(node.position.x, "macro \"%s\" x at %s", node.name.c_str(),
                    where);
    MP_CHECK_FINITE(node.position.y, "macro \"%s\" y at %s", node.name.c_str(),
                    where);
  }
  if (level < 2) return;
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    const netlist::Node& node = design.node(static_cast<NodeId>(i));
    MP_CHECK_FINITE(node.position.x, "node \"%s\" x at %s", node.name.c_str(),
                    where);
    MP_CHECK_FINITE(node.position.y, "node \"%s\" y at %s", node.name.c_str(),
                    where);
  }
}

void validate_occupancy_reconciles(const grid::OccupancyMap& occupancy,
                                   const grid::OccupancyMap& initial,
                                   const std::vector<grid::Footprint>& footprints,
                                   const std::vector<grid::CellCoord>& anchors,
                                   const char* where) {
  const int level = validate_level();
  if (level < 1) return;

  MP_CHECK_LE(anchors.size(), footprints.size(),
              "more anchors than footprints at %s", where);
  grid::OccupancyMap replayed = initial;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    MP_CHECK(replayed.fits(footprints[i], anchors[i]),
             "anchor %zu (%d,%d) leaves the grid at %s", i, anchors[i].gx,
             anchors[i].gy, where);
    replayed.place(footprints[i], anchors[i]);
  }
  // Placement accumulates one add per covered cell; give the comparison a
  // drift budget proportional to the number of placements.
  const double tol =
      1e-9 * occupancy.spec().cell_area() *
      static_cast<double>(anchors.size() + 1);

  const grid::GridSpec& spec = occupancy.spec();
  if (level >= 2) {
    for (int flat = 0; flat < spec.num_cells(); ++flat) {
      const grid::CellCoord c = spec.coord(flat);
      MP_CHECK_NEAR(occupancy.occupied_area(c), replayed.occupied_area(c), tol,
                    "occupancy of cell (%d,%d) diverged from replay at %s",
                    c.gx, c.gy, where);
    }
    return;
  }
  double total = 0.0;
  double replayed_total = 0.0;
  for (int flat = 0; flat < spec.num_cells(); ++flat) {
    const grid::CellCoord c = spec.coord(flat);
    total += occupancy.occupied_area(c);
    replayed_total += replayed.occupied_area(c);
  }
  MP_CHECK_NEAR(total, replayed_total,
                tol * static_cast<double>(spec.num_cells()),
                "total occupied area diverged from replay at %s", where);
}

void validate_tensor_finite(const nn::Tensor& tensor, const char* what,
                            const char* where) {
  if (validate_level() < 1) return;
  const float* data = tensor.data();
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    MP_CHECK(std::isfinite(data[i]), "%s[%zu] = %g not finite at %s", what, i,
             static_cast<double>(data[i]), where);
  }
}

void validate_finite(const std::vector<double>& values, const char* what,
                     const char* where) {
  if (validate_level() < 1) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    MP_CHECK(std::isfinite(values[i]), "%s[%zu] = %g not finite at %s", what,
             i, values[i], where);
  }
}

void validate_probabilities(const nn::Tensor& probs, const char* what,
                            const char* where) {
  const int level = validate_level();
  if (level < 1) return;
  double sum = 0.0;
  const float* data = probs.data();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double p = static_cast<double>(data[i]);
    MP_CHECK(std::isfinite(p), "%s[%zu] = %g not finite at %s", what, i, p,
             where);
    MP_CHECK_GE(p, 0.0, "%s[%zu] negative at %s", what, i, where);
    if (level >= 2) {
      MP_CHECK_LE(p, 1.0 + 1e-5, "%s[%zu] above 1 at %s", what, i, where);
    }
    sum += p;
  }
  // float accumulation over ζ² entries; 1e-3 leaves headroom without letting
  // an unnormalized distribution slip through.
  MP_CHECK_NEAR(sum, 1.0, 1e-3, "%s does not sum to 1 at %s", what, where);
}

}  // namespace mp::check
