#include "check/check.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"

namespace mp::check {

namespace {

// -1 = not yet initialized from MP_VALIDATE_LEVEL.
std::atomic<int> g_validate_level{-1};
std::atomic<bool> g_abort_on_failure{true};

int level_from_env() {
  const char* raw = std::getenv("MP_VALIDATE_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0') || v < 0 || v > 2) {
    std::fprintf(stderr,
                 "[warn] MP_VALIDATE_LEVEL=\"%s\" not recognized (expected "
                 "0|1|2); validation stays off\n",
                 raw);
    return 0;
  }
  return static_cast<int>(v);
}

}  // namespace

int validate_level() {
  int v = g_validate_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = level_from_env();
    int expected = -1;
    // Another thread may have raced set_validate_level(); keep its value.
    g_validate_level.compare_exchange_strong(expected, v,
                                             std::memory_order_relaxed);
    v = g_validate_level.load(std::memory_order_relaxed);
  }
  return v;
}

void set_validate_level(int level) {
  g_validate_level.store(level < 0 ? 0 : (level > 2 ? 2 : level),
                         std::memory_order_relaxed);
}

void set_abort_on_failure(bool abort_on_failure) {
  g_abort_on_failure.store(abort_on_failure, std::memory_order_relaxed);
}

bool abort_on_failure() {
  return g_abort_on_failure.load(std::memory_order_relaxed);
}

namespace detail {

std::string format_message(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out.empty() ? out : " — " + out;
}

void fail(const char* file, int line, const char* kind, const char* expr,
          const std::string& message) {
  const std::string span = obs::current_span_path();
  std::string text;
  text.reserve(256);
  text += file;
  text += ':';
  text += std::to_string(line);
  text += ": ";
  text += kind;
  text += " failed: ";
  text += expr;
  text += message;
  text += "\n  [obs span: ";
  text += span.empty() ? "<none>" : span;
  text += "]";
  if (!abort_on_failure()) throw CheckFailure(text);
  std::fprintf(stderr, "%s\n", text.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace mp::check
