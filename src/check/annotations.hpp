#pragma once
// Thread-safety annotation layer (docs/CHECKING.md "Static analysis:
// mplint").  Every macro expands to a Clang thread-safety-analysis
// attribute when the compiler is clang — so `-Wthread-safety` works the day
// a clang toolchain appears in the container — and to nothing under gcc,
// where tools/mplint enforces the *presence* of the annotations instead.
//
// Usage conventions, enforced by mplint's `mutex-annotation` check:
//
//   * every `std::mutex` / `std::shared_mutex` / `std::condition_variable`
//     member (or namespace-scope instance) carries an annotation from this
//     family on its declaration.  For the lock itself that is MP_GUARDS(...)
//     — the dual of MP_GUARDED_BY, naming the state the lock protects — or
//     MP_ACQUIRED_BEFORE / MP_ACQUIRED_AFTER when a lock order exists;
//   * the data those locks protect carries MP_GUARDED_BY(lock) /
//     MP_PT_GUARDED_BY(lock);
//   * functions that expect a lock held carry MP_REQUIRES(lock) (the
//     `*_locked()` helpers), functions that must NOT be entered with it held
//     carry MP_EXCLUDES(lock), and RAII-breaking entry points carry
//     MP_ACQUIRE / MP_RELEASE.
//
// Caveats for the clang day: libstdc++'s std::mutex is not annotated as a
// capability, so clang emits -Wthread-safety-attributes notes unless the
// build uses libc++ with _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS (or
// silences that one warning group).  Define MP_NO_THREAD_SAFETY_ANALYSIS_ATTRS
// to compile the whole layer away regardless of compiler.

#if defined(__clang__) && !defined(SWIG) && \
    !defined(MP_NO_THREAD_SAFETY_ANALYSIS_ATTRS)
#define MP_TSA_ATTRIBUTE__(x) __attribute__((x))
#else
#define MP_TSA_ATTRIBUTE__(x)
#endif

/// On a lock-like *type*: marks it as a capability ("mutex", "role", ...).
#define MP_CAPABILITY(x) MP_TSA_ATTRIBUTE__(capability(x))

/// On an RAII guard type: acquires in the constructor, releases in the
/// destructor (std::lock_guard-shaped wrappers).
#define MP_SCOPED_CAPABILITY MP_TSA_ATTRIBUTE__(scoped_lockable)

/// On a data member: readable/writable only with `x` held.
#define MP_GUARDED_BY(x) MP_TSA_ATTRIBUTE__(guarded_by(x))

/// On a pointer member: the *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define MP_PT_GUARDED_BY(x) MP_TSA_ATTRIBUTE__(pt_guarded_by(x))

/// On a lock member: documents lock-ordering edges (deadlock detection).
#define MP_ACQUIRED_BEFORE(...) MP_TSA_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define MP_ACQUIRED_AFTER(...) MP_TSA_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// On a function: the caller must hold the lock(s) (exclusively / shared).
#define MP_REQUIRES(...) MP_TSA_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define MP_REQUIRES_SHARED(...) \
  MP_TSA_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// On a function: acquires / releases the lock(s) itself.
#define MP_ACQUIRE(...) MP_TSA_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define MP_ACQUIRE_SHARED(...) \
  MP_TSA_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define MP_RELEASE(...) MP_TSA_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define MP_RELEASE_SHARED(...) \
  MP_TSA_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define MP_TRY_ACQUIRE(...) \
  MP_TSA_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// On a function: must be called WITHOUT the lock(s) held (it takes them).
#define MP_EXCLUDES(...) MP_TSA_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// On a function: runtime-asserts the lock is held instead of proving it.
#define MP_ASSERT_CAPABILITY(x) MP_TSA_ATTRIBUTE__(assert_capability(x))

/// On a function returning a reference to a lock.
#define MP_RETURN_CAPABILITY(x) MP_TSA_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis inside one function body.
#define MP_NO_THREAD_SAFETY_ANALYSIS \
  MP_TSA_ATTRIBUTE__(no_thread_safety_analysis)

/// On a std::mutex / std::shared_mutex / std::condition_variable member:
/// names the state the lock protects (members, or a string for external
/// state such as an output stream).  Clang has no attribute for the lock
/// side of the guarded-by relation — it derives it from MP_GUARDED_BY on
/// the data — so this expands to nothing everywhere; mplint treats it as the
/// machine-checked statement that the lock's protection set was thought
/// about, and its arguments keep that statement next to the declaration.
#define MP_GUARDS(...)
