#pragma once
// Deep structural validators for the placement flow, gated by
// MP_VALIDATE_LEVEL (check::validate_level()):
//   0 — every function here returns immediately (one cached-int branch);
//       flow output is bit-identical to a build without the layer,
//   1 — cheap aggregate checks at stage boundaries,
//   2 — exhaustive per-pair / per-cell / per-element reconciliation.
//
// Validators only read state; a violated invariant aborts through MP_CHECK
// with the offending objects named and the active obs span path attached.
// `where` is a short call-site tag ("legal.legalize_groups", "flow.final")
// included in every failure message.  Catalog in docs/CHECKING.md.

#include <vector>

#include "check/check.hpp"
#include "grid/occupancy.hpp"
#include "netlist/design.hpp"
#include "nn/tensor.hpp"

namespace mp::check {

/// Placement legality after a legalization stage.
///   level 1: total pairwise macro overlap area <= `overlap_tolerance`
///            relative to the region area, every movable node inside the
///            region, every position finite.
///   level 2: additionally walks all macro pairs and names the first
///            overlapping pair, and names the first out-of-region node.
void validate_placement_legal(const netlist::Design& design, const char* where,
                              double overlap_tolerance = 1e-9);

/// Positions and HPWL finite after an analytic stage (GP/QP): no NaN/Inf
/// crept out of the numeric solvers.  level 1 checks the movable macros and
/// the total HPWL; level 2 checks every node.
void validate_positions_finite(const netlist::Design& design, const char* where);

/// Incremental grid occupancy reconciled against a from-scratch replay of
/// the placed footprints (anchors[i] places footprints[i] on top of
/// `initial`).  level 1: total occupied area matches; level 2: every cell
/// matches.  Tolerance scales with the number of placements (accumulated
/// floating-point drift).
void validate_occupancy_reconciles(const grid::OccupancyMap& occupancy,
                                   const grid::OccupancyMap& initial,
                                   const std::vector<grid::Footprint>& footprints,
                                   const std::vector<grid::CellCoord>& anchors,
                                   const char* where);

/// NaN/Inf guard over a tensor (NN activations, gradients, parameters).
/// Runs at level >= 1; `what` names the tensor in the failure message.
void validate_tensor_finite(const nn::Tensor& tensor, const char* what,
                            const char* where);

/// NaN/Inf guard over a scalar vector (rewards, advantages, state maps).
void validate_finite(const std::vector<double>& values, const char* what,
                     const char* where);

/// Probability vector: finite, non-negative entries summing to ~1 (level 1);
/// level 2 additionally rejects entries > 1 + eps.
void validate_probabilities(const nn::Tensor& probs, const char* what,
                            const char* where);

}  // namespace mp::check
