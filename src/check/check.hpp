#pragma once
// Machine-checked invariants for the placement flow (docs/CHECKING.md):
//
//  * MP_CHECK(cond, ...)        — always-on invariant; on failure prints
//    file:line, the stringized condition, an optional printf-style message
//    and the active obs span path (so the failure names the phase it died
//    in), then aborts.
//  * MP_DCHECK(cond, ...)       — debug/validate builds only (follows assert
//    semantics: compiled out when NDEBUG is defined, overridable with
//    MP_DCHECK_ENABLED=0|1).
//  * MP_CHECK_NEAR/GE/GT/LE/LT — numeric comparisons that print both
//    operand values on failure (NaN operands always fail).
//  * MP_CHECK_FINITE(x, ...)    — NaN/Inf guard.
//
// Deep structural validators built on these macros live in
// check/validators.hpp and are gated by MP_VALIDATE_LEVEL (see
// validate_level() below); the macros themselves are unconditional.

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mp::check {

/// Structural-validation depth, read once from MP_VALIDATE_LEVEL:
///   0 — off (default): validators are skipped entirely and the flow output
///       is bit-identical to a build without the layer,
///   1 — cheap: aggregate checks at stage boundaries (overlap totals,
///       residual/finiteness guards),
///   2 — exhaustive: per-pair / per-cell / per-step reconciliation.
int validate_level();

/// Programmatic override of MP_VALIDATE_LEVEL (tests, embedding apps).
void set_validate_level(int level);

/// Thrown instead of aborting when abort-on-failure is disabled (tests use
/// this to assert that a validator catches a corrupted state).
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

/// When `abort_on_failure` is false, a failed check throws CheckFailure
/// instead of calling std::abort().  Default: true (abort).  Intended for
/// tests only; the RAII ScopedCheckThrow below restores the previous mode.
void set_abort_on_failure(bool abort_on_failure);
bool abort_on_failure();

class ScopedCheckThrow {
 public:
  ScopedCheckThrow() : previous_(abort_on_failure()) {
    set_abort_on_failure(false);
  }
  ~ScopedCheckThrow() { set_abort_on_failure(previous_); }
  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;

 private:
  bool previous_;
};

namespace detail {

/// Reports a failed check and aborts (or throws CheckFailure, see above).
/// `kind` is the macro name, `expr` the stringized condition.
[[noreturn]] void fail(const char* file, int line, const char* kind,
                       const char* expr, const std::string& message);

/// printf-style message formatting; the no-argument overload supports the
/// message-less macro forms.
inline std::string format_message() { return {}; }
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string format_message(const char* fmt, ...);

/// "  (lhs=…, rhs=…)" operand dump for the numeric comparison macros.
template <typename A, typename B>
std::string describe_operands(const A& a, const B& b) {
  std::ostringstream os;
  os.precision(17);
  os << " (lhs=" << a << ", rhs=" << b << ")";
  return os.str();
}

template <typename A>
std::string describe_operand(const A& a) {
  std::ostringstream os;
  os.precision(17);
  os << " (value=" << a << ")";
  return os.str();
}

}  // namespace detail
}  // namespace mp::check

/// Always-on invariant check; aborts on failure.
#define MP_CHECK(cond, ...)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::mp::check::detail::fail(                                         \
          __FILE__, __LINE__, "MP_CHECK", #cond,                         \
          ::mp::check::detail::format_message(__VA_ARGS__));             \
    }                                                                    \
  } while (0)

// Shared implementation of the binary comparison checks.
#define MP_CHECK_OP_IMPL(kind, op, a, b, ...)                            \
  do {                                                                   \
    const auto mp_check_lhs_ = (a);                                      \
    const auto mp_check_rhs_ = (b);                                      \
    if (!(mp_check_lhs_ op mp_check_rhs_)) {                             \
      ::mp::check::detail::fail(                                         \
          __FILE__, __LINE__, kind, #a " " #op " " #b,                   \
          ::mp::check::detail::describe_operands(mp_check_lhs_,          \
                                                 mp_check_rhs_) +        \
              ::mp::check::detail::format_message(__VA_ARGS__));         \
    }                                                                    \
  } while (0)

#define MP_CHECK_GE(a, b, ...) MP_CHECK_OP_IMPL("MP_CHECK_GE", >=, a, b, __VA_ARGS__)
#define MP_CHECK_GT(a, b, ...) MP_CHECK_OP_IMPL("MP_CHECK_GT", >, a, b, __VA_ARGS__)
#define MP_CHECK_LE(a, b, ...) MP_CHECK_OP_IMPL("MP_CHECK_LE", <=, a, b, __VA_ARGS__)
#define MP_CHECK_LT(a, b, ...) MP_CHECK_OP_IMPL("MP_CHECK_LT", <, a, b, __VA_ARGS__)
#define MP_CHECK_EQ(a, b, ...) MP_CHECK_OP_IMPL("MP_CHECK_EQ", ==, a, b, __VA_ARGS__)

/// |a - b| <= tol, with NaN operands failing (the negated comparison form).
#define MP_CHECK_NEAR(a, b, tol, ...)                                    \
  do {                                                                   \
    const double mp_check_lhs_ = static_cast<double>(a);                 \
    const double mp_check_rhs_ = static_cast<double>(b);                 \
    const double mp_check_tol_ = static_cast<double>(tol);               \
    if (!(std::abs(mp_check_lhs_ - mp_check_rhs_) <= mp_check_tol_)) {   \
      ::mp::check::detail::fail(                                         \
          __FILE__, __LINE__, "MP_CHECK_NEAR",                           \
          "|" #a " - " #b "| <= " #tol,                                  \
          ::mp::check::detail::describe_operands(mp_check_lhs_,          \
                                                 mp_check_rhs_) +        \
              ::mp::check::detail::format_message(__VA_ARGS__));         \
    }                                                                    \
  } while (0)

/// NaN/Inf guard (value printed on failure).
#define MP_CHECK_FINITE(x, ...)                                          \
  do {                                                                   \
    const double mp_check_val_ = static_cast<double>(x);                 \
    if (!std::isfinite(mp_check_val_)) {                                 \
      ::mp::check::detail::fail(                                         \
          __FILE__, __LINE__, "MP_CHECK_FINITE", "isfinite(" #x ")",     \
          ::mp::check::detail::describe_operand(mp_check_val_) +         \
              ::mp::check::detail::format_message(__VA_ARGS__));         \
    }                                                                    \
  } while (0)

// MP_DCHECK follows assert() semantics by default (this codebase builds its
// Release configuration without NDEBUG, so DCHECKs are active there too);
// define MP_DCHECK_ENABLED=0|1 to force either way.
#ifndef MP_DCHECK_ENABLED
#ifdef NDEBUG
#define MP_DCHECK_ENABLED 0
#else
#define MP_DCHECK_ENABLED 1
#endif
#endif

#if MP_DCHECK_ENABLED
#define MP_DCHECK(cond, ...) MP_CHECK(cond, __VA_ARGS__)
#else
#define MP_DCHECK(cond, ...) \
  do {                       \
  } while (0)
#endif

namespace mp::check {
/// True when MP_DCHECK compiles to a real check in this translation unit's
/// build configuration (mirrors the macro so tests can branch at runtime).
constexpr bool dchecks_enabled() { return MP_DCHECK_ENABLED != 0; }
}  // namespace mp::check
