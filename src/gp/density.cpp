#include "gp/density.hpp"

#include <algorithm>
#include <cmath>

namespace mp::gp {

DensityGrid::DensityGrid(const geometry::Rect& region, int bins,
                         double target_density)
    : region_(region), bins_(bins) {
  bin_w_ = region.w / bins;
  bin_h_ = region.h / bins;
  capacity_.assign(static_cast<std::size_t>(bins) * bins,
                   bin_w_ * bin_h_ * target_density);
  usage_.assign(capacity_.size(), 0.0);
}

int DensityGrid::bin_x_of(double x) const {
  return std::clamp(static_cast<int>(std::floor((x - region_.x) / bin_w_)), 0,
                    bins_ - 1);
}

int DensityGrid::bin_y_of(double y) const {
  return std::clamp(static_cast<int>(std::floor((y - region_.y) / bin_h_)), 0,
                    bins_ - 1);
}

void DensityGrid::add_fixed(const geometry::Rect& rect) {
  const int bx0 = bin_x_of(rect.left());
  const int bx1 = bin_x_of(std::nextafter(rect.right(), rect.left()));
  const int by0 = bin_y_of(rect.bottom());
  const int by1 = bin_y_of(std::nextafter(rect.top(), rect.bottom()));
  for (int by = by0; by <= by1; ++by) {
    for (int bx = bx0; bx <= bx1; ++bx) {
      const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
      capacity_[index(bx, by)] = std::max(
          0.0, capacity_[index(bx, by)] - geometry::overlap_area(rect, bin));
    }
  }
}

void DensityGrid::add_movable(const geometry::Rect& rect) {
  total_movable_ += rect.area();
  const int bx0 = bin_x_of(rect.left());
  const int bx1 = bin_x_of(std::nextafter(rect.right(), rect.left()));
  const int by0 = bin_y_of(rect.bottom());
  const int by1 = bin_y_of(std::nextafter(rect.top(), rect.bottom()));
  for (int by = by0; by <= by1; ++by) {
    for (int bx = bx0; bx <= bx1; ++bx) {
      const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
      usage_[index(bx, by)] += geometry::overlap_area(rect, bin);
    }
  }
}

void DensityGrid::clear_movable() {
  std::fill(usage_.begin(), usage_.end(), 0.0);
  total_movable_ = 0.0;
}

double DensityGrid::overflow_ratio() const {
  if (total_movable_ <= 0.0) return 0.0;
  double overflow = 0.0;
  for (std::size_t i = 0; i < usage_.size(); ++i) {
    overflow += std::max(0.0, usage_[i] - capacity_[i]);
  }
  return overflow / total_movable_;
}

}  // namespace mp::gp
