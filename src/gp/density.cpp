#include "gp/density.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "par/par.hpp"

namespace mp::gp {

DensityGrid::DensityGrid(const geometry::Rect& region, int bins,
                         double target_density)
    : region_(region), bins_(bins) {
  bin_w_ = region.w / bins;
  bin_h_ = region.h / bins;
  capacity_.assign(static_cast<std::size_t>(bins) * bins,
                   bin_w_ * bin_h_ * target_density);
  usage_.assign(capacity_.size(), 0.0);
}

int DensityGrid::bin_x_of(double x) const {
  return std::clamp(static_cast<int>(std::floor((x - region_.x) / bin_w_)), 0,
                    bins_ - 1);
}

int DensityGrid::bin_y_of(double y) const {
  return std::clamp(static_cast<int>(std::floor((y - region_.y) / bin_h_)), 0,
                    bins_ - 1);
}

void DensityGrid::add_fixed(const geometry::Rect& rect) {
  const int bx0 = bin_x_of(rect.left());
  const int bx1 = bin_x_of(std::nextafter(rect.right(), rect.left()));
  const int by0 = bin_y_of(rect.bottom());
  const int by1 = bin_y_of(std::nextafter(rect.top(), rect.bottom()));
  for (int by = by0; by <= by1; ++by) {
    for (int bx = bx0; bx <= bx1; ++bx) {
      const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
      capacity_[index(bx, by)] = std::max(
          0.0, capacity_[index(bx, by)] - geometry::overlap_area(rect, bin));
    }
  }
}

void DensityGrid::add_movable(const geometry::Rect& rect) {
  total_movable_ += rect.area();
  const int bx0 = bin_x_of(rect.left());
  const int bx1 = bin_x_of(std::nextafter(rect.right(), rect.left()));
  const int by0 = bin_y_of(rect.bottom());
  const int by1 = bin_y_of(std::nextafter(rect.top(), rect.bottom()));
  for (int by = by0; by <= by1; ++by) {
    for (int bx = bx0; bx <= bx1; ++bx) {
      const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
      usage_[index(bx, by)] += geometry::overlap_area(rect, bin);
    }
  }
}

void DensityGrid::add_all(const std::vector<geometry::Rect>& rects,
                          const std::vector<unsigned char>& movable) {
  assert(rects.size() == movable.size());
  // The movable-area total is a plain serial sum either way (rect order).
  for (std::size_t i = 0; i < rects.size(); ++i) {
    if (movable[i] != 0) total_movable_ += rects[i].area();
  }
  if (par::current_threads() <= 1 || par::in_worker() || bins_ < 2) {
    for (std::size_t i = 0; i < rects.size(); ++i) {
      const geometry::Rect& rect = rects[i];
      const int bx0 = bin_x_of(rect.left());
      const int bx1 = bin_x_of(std::nextafter(rect.right(), rect.left()));
      const int by0 = bin_y_of(rect.bottom());
      const int by1 = bin_y_of(std::nextafter(rect.top(), rect.bottom()));
      for (int by = by0; by <= by1; ++by) {
        for (int bx = bx0; bx <= bx1; ++bx) {
          const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
          const double a = geometry::overlap_area(rect, bin);
          if (movable[i] != 0) {
            usage_[index(bx, by)] += a;
          } else {
            capacity_[index(bx, by)] = std::max(0.0, capacity_[index(bx, by)] - a);
          }
        }
      }
    }
    return;
  }
  // Parallel path: each task owns a contiguous band of bin rows and scans
  // the whole rect list, clipping each rect's bin span to its band.  Bands
  // write disjoint bins, and within a bin the accumulation order is the
  // rect order — identical to the serial loop bit for bit.
  struct Span {
    int bx0, bx1, by0, by1;
  };
  std::vector<Span> spans(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const geometry::Rect& rect = rects[i];
    spans[i] = {bin_x_of(rect.left()),
                bin_x_of(std::nextafter(rect.right(), rect.left())),
                bin_y_of(rect.bottom()),
                bin_y_of(std::nextafter(rect.top(), rect.bottom()))};
  }
  const std::size_t rows = static_cast<std::size_t>(bins_);
  const std::size_t grain =
      std::max<std::size_t>(1, rows / (4 * static_cast<std::size_t>(par::current_threads())));
  par::parallel_for(0, rows, grain, [&](std::size_t lo, std::size_t hi) {
    const int band_lo = static_cast<int>(lo);
    const int band_hi = static_cast<int>(hi);  // exclusive
    for (std::size_t i = 0; i < rects.size(); ++i) {
      const Span& s = spans[i];
      const int by0 = std::max(s.by0, band_lo);
      const int by1 = std::min(s.by1, band_hi - 1);
      if (by0 > by1) continue;
      const geometry::Rect& rect = rects[i];
      for (int by = by0; by <= by1; ++by) {
        for (int bx = s.bx0; bx <= s.bx1; ++bx) {
          const geometry::Rect bin(bin_left(bx), bin_bottom(by), bin_w_, bin_h_);
          const double a = geometry::overlap_area(rect, bin);
          if (movable[i] != 0) {
            usage_[index(bx, by)] += a;
          } else {
            capacity_[index(bx, by)] = std::max(0.0, capacity_[index(bx, by)] - a);
          }
        }
      }
    }
  });
}

void DensityGrid::clear_movable() {
  std::fill(usage_.begin(), usage_.end(), 0.0);
  total_movable_ = 0.0;
}

double DensityGrid::overflow_ratio() const {
  if (total_movable_ <= 0.0) return 0.0;
  double overflow = 0.0;
  for (std::size_t i = 0; i < usage_.size(); ++i) {
    overflow += std::max(0.0, usage_[i] - capacity_[i]);
  }
  return overflow / total_movable_;
}

}  // namespace mp::gp
