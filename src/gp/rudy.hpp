#pragma once
// RUDY congestion estimation (Rectangular Uniform wire DensitY, Spindler &
// Johannes DATE'07): each net spreads its expected wire volume uniformly
// over its bounding box; summing over nets gives a fast routability proxy.
// The paper's placer family optimizes HPWL only, but routability-driven
// variants ([7], [15], [23] in its references) gate on exactly this kind of
// map — provided here as a library utility and reported by the examples.

#include <vector>

#include "netlist/design.hpp"

namespace mp::gp {

struct RudyOptions {
  int bins = 64;            ///< map resolution (bins × bins)
  double wire_width = 1.0;  ///< assumed wire width/pitch in layout units
  std::size_t max_net_degree = 256;  ///< skip larger (global) nets
};

struct RudyMap {
  int bins = 0;
  std::vector<double> density;  ///< row-major bins×bins congestion values

  double at(int bx, int by) const {
    return density[static_cast<std::size_t>(by) * bins + bx];
  }
  double max_density() const;
  double mean_density() const;
  /// Fraction of bins above `threshold` (default 1.0 = nominally routable).
  double overflow_fraction(double threshold = 1.0) const;
};

/// Computes the RUDY map of the current placement: for each net,
/// density += w · HPWL · wire_width / bbox_area, spread over the bbox bins.
RudyMap compute_rudy(const netlist::Design& design,
                     const RudyOptions& options = {});

}  // namespace mp::gp
