#pragma once
// Bin-density bookkeeping for the global placer's spreading phase.

#include <vector>

#include "netlist/design.hpp"

namespace mp::gp {

/// Uniform B×B bin grid over the placement region tracking movable area and
/// capacity (bin area × target density − fixed area).
class DensityGrid {
 public:
  DensityGrid(const geometry::Rect& region, int bins, double target_density);

  int bins() const { return bins_; }
  double bin_width() const { return bin_w_; }
  double bin_height() const { return bin_h_; }

  /// Subtracts the overlap of a fixed rectangle from the capacities.
  void add_fixed(const geometry::Rect& rect);

  /// Adds the overlap of a movable rectangle to the usage map.
  void add_movable(const geometry::Rect& rect);

  /// Bulk accumulation of a whole design pass: rects[i] is movable when
  /// movable[i] != 0, fixed otherwise.  Equivalent to calling add_movable /
  /// add_fixed in index order; when the par:: pool has more than one thread
  /// the bins are partitioned by bin row and every task scans the full rect
  /// list, so each bin still accumulates its overlaps in rect order — the
  /// result is bit-identical to the serial loop at every thread count.
  void add_all(const std::vector<geometry::Rect>& rects,
               const std::vector<unsigned char>& movable);

  void clear_movable();

  double capacity(int bx, int by) const { return capacity_[index(bx, by)]; }
  double usage(int bx, int by) const { return usage_[index(bx, by)]; }

  /// Total overflow ratio: Σ max(0, usage − capacity) / Σ movable area.
  double overflow_ratio() const;

  int bin_x_of(double x) const;
  int bin_y_of(double y) const;
  double bin_left(int bx) const { return region_.x + bx * bin_w_; }
  double bin_bottom(int by) const { return region_.y + by * bin_h_; }

 private:
  std::size_t index(int bx, int by) const {
    return static_cast<std::size_t>(by) * bins_ + bx;
  }

  geometry::Rect region_;
  int bins_;
  double bin_w_, bin_h_;
  std::vector<double> capacity_;
  std::vector<double> usage_;
  double total_movable_ = 0.0;
};

}  // namespace mp::gp
