#include "gp/rudy.hpp"

#include <algorithm>
#include <cmath>

namespace mp::gp {

double RudyMap::max_density() const {
  double best = 0.0;
  for (double v : density) best = std::max(best, v);
  return best;
}

double RudyMap::mean_density() const {
  if (density.empty()) return 0.0;
  double sum = 0.0;
  for (double v : density) sum += v;
  return sum / static_cast<double>(density.size());
}

double RudyMap::overflow_fraction(double threshold) const {
  if (density.empty()) return 0.0;
  std::size_t over = 0;
  for (double v : density) over += (v > threshold);
  return static_cast<double>(over) / static_cast<double>(density.size());
}

RudyMap compute_rudy(const netlist::Design& design, const RudyOptions& options) {
  RudyMap map;
  map.bins = options.bins;
  map.density.assign(static_cast<std::size_t>(options.bins) * options.bins, 0.0);
  const geometry::Rect region = design.region();
  if (region.w <= 0.0 || region.h <= 0.0) return map;
  const double bin_w = region.w / options.bins;
  const double bin_h = region.h / options.bins;

  const auto bin_x = [&](double x) {
    return std::clamp(static_cast<int>(std::floor((x - region.x) / bin_w)), 0,
                      options.bins - 1);
  };
  const auto bin_y = [&](double y) {
    return std::clamp(static_cast<int>(std::floor((y - region.y) / bin_h)), 0,
                      options.bins - 1);
  };

  for (const netlist::Net& net : design.nets()) {
    if (net.pins.size() < 2 || net.pins.size() > options.max_net_degree) continue;
    geometry::BoundingBox box;
    for (const netlist::PinRef& pin : net.pins) {
      box.add(design.pin_position(pin));
    }
    const double hpwl = box.half_perimeter();
    if (hpwl <= 0.0) continue;
    // Degenerate boxes (all pins on one line) get a one-wire-width extent.
    const double bw = std::max(box.width(), options.wire_width);
    const double bh = std::max(box.height(), options.wire_width);
    const double wire_area = net.weight * hpwl * options.wire_width;
    const double density = wire_area / (bw * bh);

    const int x0 = bin_x(box.min_x());
    const int x1 = bin_x(box.max_x());
    const int y0 = bin_y(box.min_y());
    const int y1 = bin_y(box.max_y());
    for (int by = y0; by <= y1; ++by) {
      for (int bx = x0; bx <= x1; ++bx) {
        // Overlap fraction of this bin with the net box, relative to bin area.
        const geometry::Rect bin(region.x + bx * bin_w, region.y + by * bin_h,
                                 bin_w, bin_h);
        const geometry::Rect net_box = geometry::Rect::from_corners(
            box.min_x(), box.min_y(), box.min_x() + bw, box.min_y() + bh);
        const double overlap = geometry::overlap_area(bin, net_box);
        if (overlap <= 0.0) continue;
        map.density[static_cast<std::size_t>(by) * options.bins + bx] +=
            density * overlap / (bin_w * bin_h);
      }
    }
  }
  return map;
}

}  // namespace mp::gp
