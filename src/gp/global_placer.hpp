#pragma once
// Analytical mixed-size global placer: quadratic wirelength solves
// interleaved with look-ahead spreading (histogram equalization along bin
// rows/columns, SimPL-style) whose targets are fed back as anchor springs of
// growing weight.  Serves three roles in the reproduction:
//   * DREAMPlace [25] stand-in — full cell placement + wirelength measurement
//     after macros are fixed (Sec. II-C),
//   * RePlAce [10] stand-in — mixed-size analytical baseline (Table III),
//   * the initial placement required by the clustering stage (Sec. II-A).

#include "netlist/design.hpp"
#include "qp/quadratic.hpp"
#include "util/cancel.hpp"

namespace mp::gp {

struct GlobalPlaceOptions {
  /// Spreading rounds (each is: density eval → 1-D remap → anchored QP).
  int max_iterations = 16;
  /// Stop when the overflow ratio drops below this.
  double overflow_target = 0.08;
  /// Bin-grid resolution; 0 picks sqrt(#movable)/2 clamped to [8, 128].
  int bins = 0;
  /// Fraction of a bin a cell may fill.
  double target_density = 0.9;
  /// Anchor spring weight of the first spreading round (relative to typical
  /// net weight 1); multiplied by `anchor_growth` each round.
  double anchor_weight = 0.02;
  double anchor_growth = 1.6;
  /// When true, movable macros spread together with cells (mixed-size mode —
  /// the RePlAce-like baseline); when false only std cells move and all
  /// macros are treated as fixed obstacles (cell placement mode).
  bool move_macros = false;
  /// Bound-to-Bound wirelength polish after the spreading loop: reweights
  /// two-pin connections by 1/distance so the quadratic optimum approaches
  /// the HPWL optimum (qp/b2b.hpp).  0 disables.
  int b2b_iterations = 0;
  /// Anchor weight holding the spread positions during the B2B polish (so
  /// the density achieved by spreading is not thrown away).
  double b2b_anchor_weight = 0.05;
  qp::QpOptions qp;
  /// Cooperative cancellation, polled at spreading-round boundaries: a
  /// cancelled run stops after the current round's anchored QP (positions
  /// stay finite and consistent) and skips the B2B polish.  An inert or
  /// never-triggered token leaves results bit-identical.
  util::CancelToken cancel;
};

struct GlobalPlaceResult {
  double hpwl = 0.0;
  double overflow_ratio = 0.0;
  int iterations = 0;
  bool cancelled = false;  ///< stopped early via GlobalPlaceOptions::cancel
};

/// Runs global placement in place.  Moves std cells (and movable macros when
/// options.move_macros) — pads and fixed nodes never move.
GlobalPlaceResult global_place(netlist::Design& design,
                               const GlobalPlaceOptions& options = {});

}  // namespace mp::gp
