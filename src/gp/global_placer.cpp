#include "gp/global_placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "gp/density.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "qp/b2b.hpp"
#include "util/log.hpp"

namespace mp::gp {

using netlist::Design;
using netlist::NodeId;

namespace {

int auto_bins(std::size_t num_movable) {
  const int b = static_cast<int>(std::sqrt(static_cast<double>(num_movable)) / 2.0);
  return std::clamp(b, 8, 128);
}

// 1-D histogram-equalization remap along one axis.  `positions` are current
// centers along the axis, `areas` the node areas, `cap` the per-bin capacity
// along the slice, `lo` the slice origin and `step` the bin extent.  Returns
// target centers.  Cells keep their relative order.
std::vector<double> equalize_slice(const std::vector<double>& positions,
                                   const std::vector<double>& areas,
                                   std::vector<double> cap, double lo,
                                   double step) {
  const std::size_t n = positions.size();
  std::vector<double> targets(n, 0.0);
  if (n == 0) return targets;

  double total_area = 0.0;
  for (double a : areas) total_area += a;
  double total_cap = 0.0;
  for (double c : cap) total_cap += c;
  if (total_cap <= 0.0) {
    // Nothing fits anywhere; spread uniformly over the slice.
    for (std::size_t i = 0; i < n; ++i) {
      targets[i] = lo + step * static_cast<double>(cap.size()) *
                            (static_cast<double>(i) + 0.5) /
                            static_cast<double>(n);
    }
    return targets;
  }
  if (total_area > total_cap) {
    const double scale = total_area / total_cap;
    for (double& c : cap) c *= scale;
    total_cap = total_area;
  }

  // Sort by current position.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return positions[a] < positions[b]; });

  // Prefix capacity.
  std::vector<double> prefix(cap.size() + 1, 0.0);
  for (std::size_t j = 0; j < cap.size(); ++j) prefix[j + 1] = prefix[j] + cap[j];

  // Keep the packed cell train centered on the capacity profile rather than
  // packed to the low end: offset by half the slack.
  const double slack = std::max(0.0, total_cap - total_area);
  double cum = slack / 2.0;
  std::size_t j = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    const double mid = cum + areas[i] / 2.0;
    while (j + 1 < prefix.size() - 0 && prefix[j + 1] < mid) ++j;
    if (j >= cap.size()) j = cap.size() - 1;
    const double within = (cap[j] > 0.0) ? (mid - prefix[j]) / cap[j] : 0.5;
    targets[i] = lo + (static_cast<double>(j) + std::clamp(within, 0.0, 1.0)) * step;
    cum += areas[i];
  }
  return targets;
}

// One density pass over the whole design: every non-pad node's rect, with
// its movable/fixed role, accumulated through DensityGrid::add_all (which
// parallelizes across bin rows deterministically).
DensityGrid build_density_grid(const Design& design,
                               const std::vector<bool>& is_movable,
                               const geometry::Rect& region, int bins,
                               double target_density) {
  DensityGrid grid(region, bins, target_density);
  std::vector<geometry::Rect> rects;
  std::vector<unsigned char> movable;
  rects.reserve(design.num_nodes());
  movable.reserve(design.num_nodes());
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    const netlist::Node& node = design.node(static_cast<NodeId>(i));
    if (node.kind == netlist::NodeKind::kPad) continue;
    rects.push_back(node.rect());
    movable.push_back(is_movable[i] ? 1 : 0);
  }
  grid.add_all(rects, movable);
  return grid;
}

}  // namespace

GlobalPlaceResult global_place(Design& design, const GlobalPlaceOptions& options) {
  MP_OBS_SPAN("gp.global_place");
  MP_OBS_COUNT("gp.invocations", 1);
  MP_OBS_HIST("gp.hpwl_before", design.total_hpwl());
  GlobalPlaceResult result;

  // Movable set.
  std::vector<NodeId> movable = design.std_cells();
  if (options.move_macros) {
    const auto& mm = design.movable_macros();
    movable.insert(movable.end(), mm.begin(), mm.end());
  }
  if (movable.empty()) {
    result.hpwl = design.total_hpwl();
    return result;
  }

  const int bins = options.bins > 0 ? options.bins : auto_bins(movable.size());
  const geometry::Rect region = design.region();

  // Initial unconstrained QP.
  qp::solve_quadratic_placement(design, movable, {}, {}, options.qp);

  // Fixed obstacles for capacity: fixed macros always; movable macros too
  // when they are not part of the movable set.
  std::vector<bool> is_movable(design.num_nodes(), false);
  for (NodeId id : movable) is_movable[static_cast<std::size_t>(id)] = true;

  double anchor_weight = options.anchor_weight;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    MP_OBS_COUNT("gp.spreading_passes", 1);
    DensityGrid grid = build_density_grid(design, is_movable, region, bins,
                                          options.target_density);
    result.overflow_ratio = grid.overflow_ratio();
    result.iterations = iter;
    if (result.overflow_ratio < options.overflow_target) break;

    // --- X pass: per bin-row remap ---
    std::vector<geometry::Point> targets(movable.size());
    for (std::size_t i = 0; i < movable.size(); ++i) {
      targets[i] = design.node(movable[i]).center();
    }
    {
      std::vector<std::vector<std::size_t>> rows(static_cast<std::size_t>(bins));
      for (std::size_t i = 0; i < movable.size(); ++i) {
        rows[static_cast<std::size_t>(grid.bin_y_of(targets[i].y))].push_back(i);
      }
      // Rows are independent slices writing disjoint targets — parallel
      // execution is bit-identical to the serial loop.
      par::parallel_for(0, static_cast<std::size_t>(bins), 1,
                        [&](std::size_t lo, std::size_t hi) {
        for (std::size_t by = lo; by < hi; ++by) {
          const auto& members = rows[by];
          if (members.empty()) continue;
          std::vector<double> pos, area, cap;
          pos.reserve(members.size());
          area.reserve(members.size());
          for (std::size_t i : members) {
            pos.push_back(targets[i].x);
            area.push_back(design.node(movable[i]).area());
          }
          cap.reserve(static_cast<std::size_t>(bins));
          for (int bx = 0; bx < bins; ++bx) {
            cap.push_back(grid.capacity(bx, static_cast<int>(by)));
          }
          const std::vector<double> remapped =
              equalize_slice(pos, area, cap, region.x, grid.bin_width());
          for (std::size_t k = 0; k < members.size(); ++k) {
            targets[members[k]].x = remapped[k];
          }
        }
      });
    }
    // --- Y pass: per bin-column remap (on x-updated bin assignment) ---
    {
      std::vector<std::vector<std::size_t>> cols(static_cast<std::size_t>(bins));
      for (std::size_t i = 0; i < movable.size(); ++i) {
        cols[static_cast<std::size_t>(grid.bin_x_of(targets[i].x))].push_back(i);
      }
      par::parallel_for(0, static_cast<std::size_t>(bins), 1,
                        [&](std::size_t lo, std::size_t hi) {
        for (std::size_t bx = lo; bx < hi; ++bx) {
          const auto& members = cols[bx];
          if (members.empty()) continue;
          std::vector<double> pos, area, cap;
          pos.reserve(members.size());
          area.reserve(members.size());
          for (std::size_t i : members) {
            pos.push_back(targets[i].y);
            area.push_back(design.node(movable[i]).area());
          }
          cap.reserve(static_cast<std::size_t>(bins));
          for (int by = 0; by < bins; ++by) {
            cap.push_back(grid.capacity(static_cast<int>(bx), by));
          }
          const std::vector<double> remapped =
              equalize_slice(pos, area, cap, region.y, grid.bin_height());
          for (std::size_t k = 0; k < members.size(); ++k) {
            targets[members[k]].y = remapped[k];
          }
        }
      });
    }

    // Anchored QP pulls the wirelength solution toward the spread targets.
    std::vector<qp::Anchor> anchors;
    anchors.reserve(movable.size());
    for (std::size_t i = 0; i < movable.size(); ++i) {
      anchors.push_back({movable[i], targets[i], anchor_weight});
    }
    qp::solve_quadratic_placement(design, movable, anchors, {}, options.qp);
    anchor_weight *= options.anchor_growth;
  }

  // Final density snapshot for reporting.
  {
    DensityGrid grid = build_density_grid(design, is_movable, region, bins,
                                          options.target_density);
    result.overflow_ratio = grid.overflow_ratio();
  }
  if (options.b2b_iterations > 0 && !result.cancelled) {
    // Hold the spread positions with weak anchors while B2B polishes
    // wirelength.
    std::vector<qp::Anchor> anchors;
    anchors.reserve(movable.size());
    for (NodeId id : movable) {
      anchors.push_back({id, design.node(id).center(), options.b2b_anchor_weight});
    }
    qp::B2bOptions b2b;
    b2b.max_iterations = options.b2b_iterations;
    qp::solve_b2b_placement(design, movable, anchors, b2b);
  }
  result.hpwl = design.total_hpwl();
  MP_OBS_HIST("gp.hpwl_after", result.hpwl);
  MP_OBS_GAUGE("gp.overflow_ratio", result.overflow_ratio);
  // Stage boundary: spreading + anchored QP must hand back finite positions
  // and a meaningful density summary, whatever the solver did internally.
  check::validate_positions_finite(design, "gp.global_place");
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(result.hpwl, "GP result HPWL");
    MP_CHECK_GE(result.hpwl, 0.0, "GP result HPWL");
    MP_CHECK_FINITE(result.overflow_ratio, "GP overflow ratio");
    MP_CHECK_GE(result.overflow_ratio, 0.0, "GP overflow ratio");
  }
  util::log_debug() << "global_place: hpwl=" << result.hpwl
                    << " overflow=" << result.overflow_ratio
                    << " iters=" << result.iterations;
  return result;
}

}  // namespace mp::gp
